"""Tests for the campaign result store (persistence, resume, cache hits, CLI).

The two acceptance properties of the subsystem live here:

* a campaign killed mid-run and resumed produces per-model ``Pf`` breakdowns
  (and outcome lists) **bit-identical** to the same campaign run
  uninterrupted, and
* a second invocation of a store-backed campaign (or figure driver) with an
  unchanged key executes **zero** new injections — observable through the
  store's persistent counters.
"""

import dataclasses

import pytest

from conftest import SMALL_PROGRAM_SOURCE

from repro.core.experiments import figure5_iu_faults, table1_characterization
from repro.engine import CampaignConfig, CampaignEngine
from repro.isa.assembler import assemble
from repro.rtl.faults import ALL_FAULT_MODELS, FaultModel
from repro.store import CampaignStore, StoreError, campaign_key, memo_key
from repro.store.cli import main as cli_main


@pytest.fixture(scope="module")
def small_program():
    return assemble(SMALL_PROGRAM_SOURCE, name="small")


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


def _config(store_path=None, **overrides):
    defaults = {
        "unit_scope": "iu",
        "sample_size": 4,
        "fault_models": [FaultModel.STUCK_AT_1, FaultModel.STUCK_AT_0],
        "seed": 11,
        "store_path": store_path,
    }
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _assert_identical(expected, actual):
    assert expected.keys() == actual.keys()
    for model in expected:
        assert expected[model].outcomes == actual[model].outcomes
        assert (
            expected[model].failure_probability
            == actual[model].failure_probability
        )
        assert (
            expected[model].classification_histogram()
            == actual[model].classification_histogram()
        )
        assert expected[model].golden_instructions == actual[model].golden_instructions
        assert expected[model].golden_cycles == actual[model].golden_cycles


class Interrupted(Exception):
    """Stand-in for a mid-campaign crash/SIGINT raised from the progress hook."""


def _interrupt_after(n):
    def progress(done, total, outcome):
        if done >= n:
            raise Interrupted(f"killed after {done}/{total}")

    return progress


class TestConfigValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            CampaignConfig(n_workers=0)

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            CampaignConfig(n_workers=-2)

    def test_rejects_zero_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            CampaignConfig(chunk_size=0)

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            CampaignConfig(scheduler="threads")

    def test_rejects_zero_sample_size(self):
        with pytest.raises(ValueError, match="sample_size"):
            CampaignConfig(sample_size=0)

    def test_rejects_empty_fault_models(self):
        with pytest.raises(ValueError, match="fault_models"):
            CampaignConfig(fault_models=[])

    def test_accepts_valid_config(self):
        config = CampaignConfig(
            n_workers=4, chunk_size=8, scheduler="process", sample_size=None
        )
        assert config.n_workers == 4


class TestKeys:
    def _key(self, program, **overrides):
        params = {
            "sites": [],
            "fault_models": list(ALL_FAULT_MODELS),
            "seed": 11,
            "backend_id": "rtl:repro.engine.backend.Leon3RtlBackend",
            "unit_scope": "iu",
            "sample_size": 4,
            "max_instructions": 400_000,
        }
        params.update(overrides)
        return campaign_key(program=program, **params)

    def test_key_is_deterministic(self, small_program):
        assert self._key(small_program) == self._key(small_program)

    def test_key_ignores_program_name(self, small_program):
        renamed = dataclasses.replace(small_program, name="other")
        assert self._key(small_program) == self._key(renamed)

    def test_key_sensitive_to_every_result_relevant_input(self, small_program):
        base = self._key(small_program)
        assert self._key(small_program, seed=12) != base
        assert self._key(small_program, unit_scope="cmem") != base
        assert self._key(small_program, max_instructions=100) != base
        assert (
            self._key(small_program, fault_models=[FaultModel.STUCK_AT_1]) != base
        )
        assert self._key(small_program, backend_id="iss:x.IssBackend") != base
        changed = dataclasses.replace(
            small_program, text=list(small_program.text) + [0]
        )
        assert self._key(changed) != base

    def test_memo_key_distinguishes_kind_and_payload(self):
        assert memo_key("table1", {"a": 1}) != memo_key("table1", {"a": 2})
        assert memo_key("table1", {"a": 1}) != memo_key("simtime", {"a": 1})


class TestStoreRoundTrip:
    def test_outcomes_round_trip_bit_identically(self, small_program, store_path):
        results = CampaignEngine(small_program, _config(store_path)).run()
        with CampaignStore(store_path) as store:
            (info,) = store.list_campaigns()
            assert info.complete
            assert info.done_jobs == info.total_jobs == 8
            records = store.stored_records(info.key)
        outcomes = [record.to_outcome() for record in records]
        flattened = (
            results[FaultModel.STUCK_AT_1].outcomes
            + results[FaultModel.STUCK_AT_0].outcomes
        )
        assert outcomes == flattened

    def test_resolve_key_prefix(self, small_program, store_path):
        CampaignEngine(small_program, _config(store_path)).run()
        with CampaignStore(store_path) as store:
            (info,) = store.list_campaigns()
            assert store.resolve_key(info.key[:8]) == info.key
            with pytest.raises(StoreError):
                store.resolve_key("zz")


class TestResume:
    def test_interrupted_then_resumed_is_bit_identical(
        self, small_program, store_path
    ):
        baseline = CampaignEngine(small_program, _config()).run()

        engine = CampaignEngine(small_program, _config(store_path))
        with pytest.raises(Interrupted):
            engine.run(progress=_interrupt_after(3))
        with CampaignStore(store_path) as store:
            (info,) = store.list_campaigns()
            assert info.status == "running"
            assert 0 < info.done_jobs < info.total_jobs
            assert store.counters()["jobs_executed"] == info.done_jobs

        resumed = CampaignEngine(small_program, _config(store_path)).run()
        _assert_identical(baseline, resumed)

        # Every injection executed exactly once across interrupt + resume.
        with CampaignStore(store_path) as store:
            assert store.counters()["jobs_executed"] == 8
            (info,) = store.list_campaigns()
            assert info.complete

    def test_interrupted_parallel_resumed_serial_is_bit_identical(
        self, small_program, store_path
    ):
        baseline = CampaignEngine(small_program, _config()).run()
        engine = CampaignEngine(
            small_program, _config(store_path, n_workers=2, chunk_size=2)
        )
        with pytest.raises(Interrupted):
            engine.run(progress=_interrupt_after(3))
        resumed = CampaignEngine(small_program, _config(store_path)).run()
        _assert_identical(baseline, resumed)

    def test_progress_streams_cached_and_fresh_jobs(self, small_program, store_path):
        engine = CampaignEngine(small_program, _config(store_path))
        with pytest.raises(Interrupted):
            engine.run(progress=_interrupt_after(3))
        seen = []
        CampaignEngine(small_program, _config(store_path)).run(
            progress=lambda done, total, outcome: seen.append((done, total))
        )
        assert seen == [(i, 8) for i in range(1, 9)]

    def test_resume_false_forces_re_execution(self, small_program, store_path):
        CampaignEngine(small_program, _config(store_path)).run()
        CampaignEngine(small_program, _config(store_path, resume=False)).run()
        with CampaignStore(store_path) as store:
            assert store.counters()["jobs_executed"] == 16
            (info,) = store.list_campaigns()
            assert info.complete


class TestCacheHit:
    def test_second_run_executes_zero_injections(self, small_program, store_path):
        first = CampaignEngine(small_program, _config(store_path)).run()
        second = CampaignEngine(small_program, _config(store_path)).run()
        _assert_identical(first, second)
        with CampaignStore(store_path) as store:
            counters = store.counters()
            (info,) = store.list_campaigns()
        assert counters["jobs_executed"] == 8  # first run only
        assert counters["jobs_cached"] == 8  # second run, fully served
        assert counters["campaign_hits"] == 1
        assert info.hit_count == 1

    def test_different_seed_is_a_different_campaign(self, small_program, store_path):
        CampaignEngine(small_program, _config(store_path)).run()
        CampaignEngine(small_program, _config(store_path, seed=12)).run()
        with CampaignStore(store_path) as store:
            assert len(store.list_campaigns()) == 2
            assert store.counters()["campaign_hits"] == 0

    def test_figure_driver_memoized_through_store(self, store_path):
        first = figure5_iu_faults(
            workloads=["intbench"], sample_size=2, store_path=store_path
        )
        with CampaignStore(store_path) as store:
            executed_after_first = store.counters()["jobs_executed"]
        assert executed_after_first == 2 * len(ALL_FAULT_MODELS)

        second = figure5_iu_faults(
            workloads=["intbench"], sample_size=2, store_path=store_path
        )
        _assert_identical(first["intbench"], second["intbench"])
        with CampaignStore(store_path) as store:
            counters = store.counters()
        assert counters["jobs_executed"] == executed_after_first  # zero new
        assert counters["campaign_hits"] == 1

    def test_table1_memoized_through_store(self, store_path):
        first = table1_characterization(
            workloads=["intbench"], store_path=store_path
        )
        second = table1_characterization(
            workloads=["intbench"], store_path=store_path
        )
        assert first == second
        assert second["intbench"].diversity > 0


class TestCli:
    def _run(self, *argv):
        return cli_main(list(argv))

    def test_run_status_report_ls_gc(self, store_path, capsys):
        args = (
            "--workload", "intbench", "--sites", "2", "--seed", "7",
            "--store", store_path, "--quiet",
        )
        assert self._run("campaign", "run", *args) == 0
        out_first = capsys.readouterr().out
        assert "executed 6 injections" in out_first

        # Second invocation: pure cache hit, zero executed.
        assert self._run("campaign", "run", *args) == 0
        out_second = capsys.readouterr().out
        assert "executed 0 injections" in out_second
        assert "served 6 from the store" in out_second

        assert self._run("campaign", "status", "--store", store_path) == 0
        out_status = capsys.readouterr().out
        assert "complete" in out_status and "6/6" in out_status

        with CampaignStore(store_path) as store:
            (info,) = store.list_campaigns()
        key_prefix = info.key[:12]
        assert self._run(
            "campaign", "report", "--key", key_prefix, "--store", store_path
        ) == 0
        assert "Pf" in capsys.readouterr().out

        assert self._run("store", "ls", "--store", store_path) == 0
        capsys.readouterr()
        assert self._run("store", "gc", "--store", store_path) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_cli_resume_completes_interrupted_campaign(self, store_path, capsys):
        # Interrupt a store-backed campaign through the Python API, with the
        # exact configuration `repro campaign run` would use...
        from repro.workloads import build_program

        program = build_program("intbench")
        config = CampaignConfig(
            unit_scope="iu", sample_size=2, seed=7, store_path=store_path
        )
        engine = CampaignEngine(program, config)
        with pytest.raises(Interrupted):
            engine.run(progress=_interrupt_after(2))
        with CampaignStore(store_path) as store:
            (info,) = store.list_campaigns()
            assert not info.complete
            key = info.key

        # ... then finish it from the CLI by key alone.
        assert self._run(
            "campaign", "resume", "--key", key[:10], "--store", store_path,
            "--quiet",
        ) == 0
        out = capsys.readouterr().out
        assert "executed 4 injections" in out
        assert "served 2 from the store" in out
        with CampaignStore(store_path) as store:
            assert store.campaign_info(key).complete

    def test_unknown_workload_fails_cleanly(self, store_path, capsys):
        rc = self._run(
            "campaign", "run", "--workload", "nope", "--store", store_path,
        )
        assert rc == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_gc_removes_incomplete_campaigns(self, store_path, capsys):
        from repro.workloads import build_program

        program = build_program("intbench")
        config = CampaignConfig(
            unit_scope="iu", sample_size=2, seed=7, store_path=store_path
        )
        with pytest.raises(Interrupted):
            CampaignEngine(program, config).run(progress=_interrupt_after(2))
        assert self._run("store", "gc", "--store", store_path) == 0
        assert "removed 1 unreferenced incomplete" in capsys.readouterr().out
        with CampaignStore(store_path) as store:
            assert store.list_campaigns() == []
