"""Tests for the SPARCv8 instruction-format encoders and bit helpers."""

import pytest

from repro.isa import encoding
from repro.isa.encoding import (
    EncodingError,
    Format1,
    Format2Branch,
    Format2Sethi,
    Format3Imm,
    Format3Reg,
    bit,
    bits,
    decode_format3,
    mask,
    sign_extend,
    to_s32,
    to_u32,
)


class TestBitHelpers:
    def test_mask_truncates_to_width(self):
        assert mask(0x1FF, 8) == 0xFF

    def test_mask_keeps_value_in_range(self):
        assert mask(0x55, 8) == 0x55

    def test_sign_extend_positive(self):
        assert sign_extend(0x0FF, 13) == 0xFF

    def test_sign_extend_negative(self):
        assert sign_extend(0x1FFF, 13) == -1

    def test_sign_extend_min_value(self):
        assert sign_extend(1 << 12, 13) == -4096

    def test_to_u32_wraps(self):
        assert to_u32(1 << 32) == 0
        assert to_u32(-1) == 0xFFFFFFFF

    def test_to_s32_negative(self):
        assert to_s32(0xFFFFFFFF) == -1
        assert to_s32(0x80000000) == -(1 << 31)

    def test_to_s32_positive(self):
        assert to_s32(0x7FFFFFFF) == (1 << 31) - 1

    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 2) == 0

    def test_bits_slice(self):
        assert bits(0xABCD1234, 31, 28) == 0xA
        assert bits(0xABCD1234, 15, 0) == 0x1234


class TestFormat1:
    def test_call_roundtrip_positive(self):
        word = Format1(disp30=0x100).encode()
        assert Format1.decode(word).disp30 == 0x100

    def test_call_roundtrip_negative(self):
        word = Format1(disp30=-4).encode()
        assert Format1.decode(word).disp30 == -4

    def test_call_major_opcode(self):
        word = Format1(disp30=1).encode()
        assert bits(word, 31, 30) == encoding.OP_CALL


class TestFormat2:
    def test_sethi_roundtrip(self):
        word = Format2Sethi(rd=5, imm22=0x3ABCDE).encode()
        decoded = Format2Sethi.decode(word)
        assert decoded.rd == 5
        assert decoded.imm22 == 0x3ABCDE

    def test_sethi_rejects_wide_rd(self):
        with pytest.raises(EncodingError):
            Format2Sethi(rd=32, imm22=0).encode()

    def test_branch_roundtrip(self):
        word = Format2Branch(cond=0x9, disp22=-16, annul=True).encode()
        decoded = Format2Branch.decode(word)
        assert decoded.cond == 0x9
        assert decoded.disp22 == -16
        assert decoded.annul is True

    def test_branch_annul_bit_position(self):
        plain = Format2Branch(cond=1, disp22=4, annul=False).encode()
        annulled = Format2Branch(cond=1, disp22=4, annul=True).encode()
        assert annulled == plain | (1 << 29)

    def test_branch_rejects_out_of_range_displacement(self):
        with pytest.raises(EncodingError):
            Format2Branch(cond=1, disp22=1 << 22).encode()


class TestFormat3:
    def test_register_form_fields(self):
        word = Format3Reg(op=2, op3=0x00, rd=1, rs1=2, rs2=3).encode()
        fields = decode_format3(word)
        assert fields["op"] == 2
        assert fields["op3"] == 0x00
        assert fields["rd"] == 1
        assert fields["rs1"] == 2
        assert fields["rs2"] == 3
        assert fields["i"] == 0

    def test_immediate_form_fields(self):
        word = Format3Imm(op=2, op3=0x04, rd=7, rs1=8, simm13=-9).encode()
        fields = decode_format3(word)
        assert fields["i"] == 1
        assert fields["simm13"] == -9
        assert fields["rd"] == 7
        assert fields["rs1"] == 8

    def test_immediate_boundaries(self):
        assert decode_format3(Format3Imm(2, 0, 0, 0, 4095).encode())["simm13"] == 4095
        assert decode_format3(Format3Imm(2, 0, 0, 0, -4096).encode())["simm13"] == -4096

    def test_immediate_out_of_range(self):
        with pytest.raises(EncodingError):
            Format3Imm(op=2, op3=0, rd=0, rs1=0, simm13=4096).encode()

    def test_register_form_rejects_bad_register(self):
        with pytest.raises(EncodingError):
            Format3Reg(op=2, op3=0, rd=0, rs1=0, rs2=32).encode()
