"""ISS functional emulator: ALU, shift, multiply and divide semantics.

Each test assembles a tiny program that computes one operation and stores the
result, then checks the value observed at the off-core boundary.
"""

from conftest import run_asm


def _alu_result(setup: str, operation: str) -> int:
    """Run `setup`, apply `operation` into %o2 and return the stored result."""
    source = f"""
        .text
        set     out, %l1
{setup}
{operation}
        st      %o2, [%l1]
        ta      0
        .data
out:
        .space  8
"""
    result, _ = run_asm(source)
    assert result.normal_exit
    return result.transactions[-1].value


class TestArithmetic:
    def test_add(self):
        assert _alu_result("        mov 7, %o0\n        mov 5, %o1",
                           "        add %o0, %o1, %o2") == 12

    def test_add_wraps_modulo_32_bits(self):
        setup = "        set 0xFFFFFFFF, %o0\n        mov 2, %o1"
        assert _alu_result(setup, "        add %o0, %o1, %o2") == 1

    def test_sub(self):
        assert _alu_result("        mov 7, %o0\n        mov 5, %o1",
                           "        sub %o0, %o1, %o2") == 2

    def test_sub_negative_result(self):
        assert _alu_result("        mov 5, %o0\n        mov 7, %o1",
                           "        sub %o0, %o1, %o2") == 0xFFFFFFFE

    def test_addx_consumes_carry(self):
        setup = "        set 0xFFFFFFFF, %o0\n        mov 1, %o1"
        operation = """
        addcc   %o0, %o1, %g1          ! produces carry
        mov     0, %o0
        mov     0, %o1
        addx    %o0, %o1, %o2          ! 0 + 0 + carry
"""
        assert _alu_result(setup, operation) == 1

    def test_subx_consumes_borrow(self):
        setup = "        mov 3, %o0\n        mov 5, %o1"
        operation = """
        subcc   %o0, %o1, %g1          ! produces borrow (carry set)
        mov     10, %o0
        mov     2, %o1
        subx    %o0, %o1, %o2          ! 10 - 2 - 1
"""
        assert _alu_result(setup, operation) == 7

    def test_immediate_operand_sign_extended(self):
        assert _alu_result("        mov 10, %o0",
                           "        add %o0, -3, %o2") == 7


class TestLogical:
    def test_and_or_xor(self):
        setup = "        set 0xF0F0, %o0\n        set 0x0FF0, %o1"
        assert _alu_result(setup, "        and %o0, %o1, %o2") == 0x00F0
        assert _alu_result(setup, "        or %o0, %o1, %o2") == 0xFFF0
        assert _alu_result(setup, "        xor %o0, %o1, %o2") == 0xFF00

    def test_andn_orn_xnor(self):
        setup = "        set 0xFF00, %o0\n        set 0x0F0F, %o1"
        assert _alu_result(setup, "        andn %o0, %o1, %o2") == 0xF000
        assert _alu_result(setup, "        orn %o0, %o1, %o2") == 0xFFFFFFF0 | 0xF00
        assert _alu_result(setup, "        xnor %o0, %o1, %o2") == (~(0xFF00 ^ 0x0F0F)) & 0xFFFFFFFF

    def test_sethi_loads_upper_22_bits(self):
        source = """
        .text
        set     out, %l1
        sethi   %hi(0xABCDE000), %o2
        st      %o2, [%l1]
        ta      0
        .data
out:
        .space  4
"""
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0xABCDE000


class TestShifts:
    def test_sll(self):
        assert _alu_result("        mov 1, %o0", "        sll %o0, 5, %o2") == 32

    def test_sll_uses_low_five_bits_of_count(self):
        assert _alu_result("        mov 1, %o0\n        mov 33, %o1",
                           "        sll %o0, %o1, %o2") == 2

    def test_srl_is_logical(self):
        assert _alu_result("        set 0x80000000, %o0",
                           "        srl %o0, 31, %o2") == 1

    def test_sra_is_arithmetic(self):
        assert _alu_result("        set 0x80000000, %o0",
                           "        sra %o0, 31, %o2") == 0xFFFFFFFF


class TestMultiplyDivide:
    def test_umul_low_result(self):
        assert _alu_result("        mov 7, %o0\n        mov 6, %o1",
                           "        umul %o0, %o1, %o2") == 42

    def test_umul_high_half_goes_to_y(self):
        setup = "        set 0x10000, %o0\n        set 0x10000, %o1"
        operation = """
        umul    %o0, %o1, %g1
        rd      %y, %o2
"""
        assert _alu_result(setup, operation) == 1

    def test_smul_signed(self):
        setup = "        mov 5, %o0\n        sub %g0, 3, %o1"
        assert _alu_result(setup, "        smul %o0, %o1, %o2") == (-15) & 0xFFFFFFFF

    def test_udiv_uses_y_as_high_dividend(self):
        operation = """
        mov     1, %g1
        mov     %g1, %y
        mov     0, %o0
        mov     16, %o1
        udiv    %o0, %o1, %o2          ! (1 << 32) / 16
"""
        assert _alu_result("        nop", operation) == 0x10000000

    def test_udiv_simple(self):
        operation = """
        wr      %g0, 0, %y
        udiv    %o0, %o1, %o2
"""
        assert _alu_result("        mov 42, %o0\n        mov 6, %o1", operation) == 7

    def test_sdiv_signed_quotient(self):
        operation = """
        wr      %g0, 0, %y
        sub     %g0, 9, %o0            ! -9... but dividend uses Y:o0, keep positive
        mov     9, %o0
        mov     3, %o1
        sdiv    %o0, %o1, %o2
"""
        assert _alu_result("        nop", operation) == 3

    def test_division_by_zero_traps(self):
        source = """
        .text
        wr      %g0, 0, %y
        mov     5, %o0
        mov     0, %o1
        udiv    %o0, %o1, %o2
        ta      0
"""
        result, _ = run_asm(source)
        assert result.halted
        assert result.trap.kind == "division_by_zero"


class TestConditionCodeInstructions:
    def test_addcc_sets_zero_flag_visible_to_branch(self):
        source = """
        .text
        set     out, %l1
        mov     0, %o0
        addcc   %o0, 0, %g0
        be      was_zero
        nop
        mov     0, %o2
        ba      done
        nop
was_zero:
        mov     1, %o2
done:
        st      %o2, [%l1]
        ta      0
        .data
out:
        .space  4
"""
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 1

    def test_plain_add_does_not_touch_flags(self):
        source = """
        .text
        set     out, %l1
        mov     1, %o0
        subcc   %o0, 1, %g0            ! Z = 1
        add     %o0, 5, %o1            ! must not clear Z
        be      still_zero
        nop
        mov     0, %o2
        ba      done
        nop
still_zero:
        mov     1, %o2
done:
        st      %o2, [%l1]
        ta      0
        .data
out:
        .space  4
"""
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 1

    def test_wr_y_xor_semantics(self):
        # wr rs1, imm, %y writes rs1 XOR imm.
        operation = """
        mov     12, %g1
        wr      %g1, 5, %y
        rd      %y, %o2
"""
        assert _alu_result("        nop", operation) == 12 ^ 5


class TestYRegister:
    """rd/wr Y-register semantics (the fast path dispatches these from its
    handler table; the reference previously evaluated the wr operands twice)."""

    def test_wr_register_register_form(self):
        operation = """
        mov     0x3C, %g1
        mov     0x0F, %g2
        wr      %g1, %g2, %y
        rd      %y, %o2
"""
        assert _alu_result("        nop", operation) == 0x3C ^ 0x0F

    def test_wr_with_zero_source_moves_value(self):
        # `mov val, %y` assembles to `wr val, 0, %y`: XOR with 0 is a move.
        operation = """
        mov     0x55, %g1
        mov     %g1, %y
        rd      %y, %o2
"""
        assert _alu_result("        nop", operation) == 0x55

    def test_rd_reads_back_umul_high_half(self):
        operation = """
        set     0x40000000, %o0
        mov     8, %o1
        umul    %o0, %o1, %g0          ! product 0x2_00000000: high half -> %y
        rd      %y, %o2
"""
        assert _alu_result("        nop", operation) == 2

    def test_wr_evaluates_operands_once(self):
        """The wr destination may alias a source; the single-evaluation fix
        must read each operand exactly once (a double evaluation is invisible
        to pure reads, so pin the behaviour by counting them)."""
        from repro.isa.assembler import assemble
        from repro.iss.emulator import Emulator
        from repro.iss.memory import Memory

        source = """
        .text
        mov     12, %g1
        wr      %g1, 5, %y
        ta      0
"""
        emulator = Emulator(memory=Memory())
        emulator.load_program(assemble(source, name="wr-once"))
        reads = []
        original_read = emulator.registers.read

        def counting_read(reg):
            reads.append(reg)
            return original_read(reg)

        emulator.registers.read = counting_read
        result = emulator.run()
        assert result.normal_exit
        assert emulator.y_register == 12 ^ 5
        # The wr instruction reads exactly one register (%g1); with the old
        # double evaluation it read it twice.
        assert reads.count(1) == 1
