"""Tests for the integer condition-code helpers."""

import pytest

from repro.isa.ccodes import (
    ConditionCodes,
    evaluate_condition,
    icc_add,
    icc_logic,
    icc_sub,
)
from repro.isa.instructions import BRANCH_CONDITIONS


class TestConditionCodeComputation:
    def test_logic_zero_sets_z(self):
        icc = icc_logic(0)
        assert (icc.n, icc.z, icc.v, icc.c) == (0, 1, 0, 0)

    def test_logic_negative_sets_n(self):
        icc = icc_logic(0x80000000)
        assert icc.n == 1 and icc.z == 0

    def test_add_carry_out(self):
        icc = icc_add(0xFFFFFFFF, 1, (0xFFFFFFFF + 1) & 0xFFFFFFFF)
        assert icc.c == 1 and icc.z == 1

    def test_add_signed_overflow(self):
        result = (0x7FFFFFFF + 1) & 0xFFFFFFFF
        icc = icc_add(0x7FFFFFFF, 1, result)
        assert icc.v == 1 and icc.n == 1

    def test_add_no_overflow_mixed_signs(self):
        result = (0x7FFFFFFF + 0xFFFFFFFF) & 0xFFFFFFFF
        icc = icc_add(0x7FFFFFFF, 0xFFFFFFFF, result)
        assert icc.v == 0

    def test_sub_borrow(self):
        result = (3 - 5) & 0xFFFFFFFF
        icc = icc_sub(3, 5, result)
        assert icc.c == 1 and icc.n == 1

    def test_sub_zero(self):
        icc = icc_sub(9, 9, 0)
        assert icc.z == 1 and icc.c == 0

    def test_sub_signed_overflow(self):
        result = (0x80000000 - 1) & 0xFFFFFFFF
        icc = icc_sub(0x80000000, 1, result)
        assert icc.v == 1

    def test_add_with_carry_in(self):
        result = (0xFFFFFFFF + 0 + 1) & 0xFFFFFFFF
        icc = icc_add(0xFFFFFFFF, 0, result, carry_in=1)
        assert icc.c == 1

    def test_pack_unpack_roundtrip(self):
        icc = ConditionCodes(n=1, z=0, v=1, c=0)
        assert ConditionCodes.from_bits(icc.as_bits()) == icc


class TestConditionEvaluation:
    def test_ba_always_and_bn_never(self):
        icc = ConditionCodes()
        assert evaluate_condition(BRANCH_CONDITIONS["ba"], icc)
        assert not evaluate_condition(BRANCH_CONDITIONS["bn"], icc)

    def test_be_and_bne(self):
        zero = ConditionCodes(z=1)
        nonzero = ConditionCodes(z=0)
        assert evaluate_condition(BRANCH_CONDITIONS["be"], zero)
        assert not evaluate_condition(BRANCH_CONDITIONS["be"], nonzero)
        assert evaluate_condition(BRANCH_CONDITIONS["bne"], nonzero)

    def test_signed_comparisons(self):
        # 3 - 5: n=1, v=0 -> "less than" true
        less = ConditionCodes(n=1, v=0)
        assert evaluate_condition(BRANCH_CONDITIONS["bl"], less)
        assert not evaluate_condition(BRANCH_CONDITIONS["bge"], less)
        assert evaluate_condition(BRANCH_CONDITIONS["ble"], less)
        assert not evaluate_condition(BRANCH_CONDITIONS["bg"], less)

    def test_signed_comparison_with_overflow(self):
        # When V is set the sign flag is inverted for signed comparisons.
        overflowed = ConditionCodes(n=0, v=1)
        assert evaluate_condition(BRANCH_CONDITIONS["bl"], overflowed)

    def test_unsigned_comparisons(self):
        borrow = ConditionCodes(c=1)
        assert evaluate_condition(BRANCH_CONDITIONS["blu" if "blu" in BRANCH_CONDITIONS else "bcs"], borrow)
        assert evaluate_condition(BRANCH_CONDITIONS["bleu"], borrow)
        assert not evaluate_condition(BRANCH_CONDITIONS["bgu"], borrow)
        assert not evaluate_condition(BRANCH_CONDITIONS["bcc"], borrow)

    def test_bgu_requires_no_carry_and_no_zero(self):
        assert evaluate_condition(BRANCH_CONDITIONS["bgu"], ConditionCodes())
        assert not evaluate_condition(BRANCH_CONDITIONS["bgu"], ConditionCodes(z=1))

    def test_negative_and_overflow_conditions(self):
        assert evaluate_condition(BRANCH_CONDITIONS["bneg"], ConditionCodes(n=1))
        assert evaluate_condition(BRANCH_CONDITIONS["bpos"], ConditionCodes(n=0))
        assert evaluate_condition(BRANCH_CONDITIONS["bvs"], ConditionCodes(v=1))
        assert evaluate_condition(BRANCH_CONDITIONS["bvc"], ConditionCodes(v=0))

    @pytest.mark.parametrize("mnemonic,cond", sorted(BRANCH_CONDITIONS.items()))
    def test_opposite_conditions_are_complementary(self, mnemonic, cond):
        icc = ConditionCodes(n=1, z=0, v=1, c=0)
        assert evaluate_condition(cond, icc) != evaluate_condition(cond ^ 0x8, icc)
