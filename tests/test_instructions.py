"""Tests for the opcode table and functional-unit mapping."""

import pytest

from repro.isa.instructions import (
    BRANCH_CONDITIONS,
    INSTRUCTION_SET,
    FunctionalUnit,
    InstructionCategory,
    instruction_set,
    lookup,
)


class TestTableConsistency:
    def test_lookup_known_mnemonic(self):
        assert lookup("add").mnemonic == "add"

    def test_lookup_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            lookup("fdivs")

    def test_singleton_accessor(self):
        assert instruction_set() is INSTRUCTION_SET

    def test_every_format3_instruction_has_unique_opcode(self):
        seen = set()
        for item in INSTRUCTION_SET:
            if item.op is not None and item.op3 is not None:
                key = (item.op, item.op3)
                assert key not in seen
                seen.add(key)

    def test_branch_conditions_cover_all_16_encodings(self):
        assert sorted(BRANCH_CONDITIONS.values()) == list(range(16))

    def test_by_op_op3_returns_none_for_unknown(self):
        assert INSTRUCTION_SET.by_op_op3(2, 0x3F) is None

    def test_by_condition_lookup(self):
        assert INSTRUCTION_SET.by_condition(0x8).mnemonic == "ba"

    def test_table_size_covers_supported_subset(self):
        # 37 format-3 ALU/control + 10 memory + sethi + call + 16 branches
        assert len(INSTRUCTION_SET) == 65


class TestFunctionalUnits:
    def test_every_instruction_uses_front_end(self):
        for item in INSTRUCTION_SET:
            assert FunctionalUnit.FETCH in item.units
            assert FunctionalUnit.DECODE in item.units
            assert FunctionalUnit.ICACHE in item.units

    def test_loads_use_dcache_and_adder(self):
        defn = lookup("ld")
        assert FunctionalUnit.DCACHE in defn.units
        assert FunctionalUnit.ALU_ADDER in defn.units
        assert defn.reads_memory and not defn.writes_memory

    def test_stores_are_memory_writes(self):
        defn = lookup("st")
        assert defn.writes_memory and not defn.reads_memory
        assert defn.access_size == 4

    def test_shift_uses_shifter_only(self):
        defn = lookup("sll")
        assert FunctionalUnit.SHIFTER in defn.units
        assert FunctionalUnit.ALU_ADDER not in defn.units

    def test_multiply_and_divide_use_dedicated_units(self):
        assert FunctionalUnit.MULTIPLIER in lookup("umul").units
        assert FunctionalUnit.DIVIDER in lookup("sdiv").units

    def test_branches_use_branch_unit_and_psr(self):
        defn = lookup("bne")
        assert FunctionalUnit.BRANCH_UNIT in defn.units
        assert FunctionalUnit.PSR in defn.units
        assert defn.is_control

    def test_cc_variants_set_icc(self):
        assert lookup("addcc").sets_icc
        assert not lookup("add").sets_icc

    def test_opcodes_for_unit_returns_exercising_opcodes(self):
        shifter_ops = set(INSTRUCTION_SET.opcodes_for_unit(FunctionalUnit.SHIFTER))
        assert shifter_ops == {"sll", "srl", "sra"}

    def test_divider_opcodes(self):
        divider_ops = set(INSTRUCTION_SET.opcodes_for_unit(FunctionalUnit.DIVIDER))
        assert divider_ops == {"udiv", "sdiv", "udivcc", "sdivcc"}

    def test_sign_extending_loads_flagged(self):
        assert lookup("ldsb").sign_extend
        assert lookup("ldsh").sign_extend
        assert not lookup("ldub").sign_extend

    def test_latencies_are_positive(self):
        for item in INSTRUCTION_SET:
            assert item.latency >= 1

    def test_divide_slower_than_add(self):
        assert lookup("udiv").latency > lookup("add").latency

    def test_categories_match_mnemonics(self):
        assert lookup("umul").category is InstructionCategory.MULTIPLY
        assert lookup("save").category is InstructionCategory.WINDOW
        assert lookup("sethi").category is InstructionCategory.SETHI
        assert lookup("ticc").category is InstructionCategory.TRAP
