"""Tests for the binary instruction decoder."""

import pytest

from repro.isa import encoding
from repro.isa.decoder import DecodeError, decode
from repro.isa.instructions import InstructionCategory


def _fmt3_reg(op, op3, rd, rs1, rs2):
    return encoding.Format3Reg(op=op, op3=op3, rd=rd, rs1=rs1, rs2=rs2).encode()


def _fmt3_imm(op, op3, rd, rs1, imm):
    return encoding.Format3Imm(op=op, op3=op3, rd=rd, rs1=rs1, simm13=imm).encode()


class TestFormat3Decoding:
    def test_add_register_form(self):
        inst = decode(_fmt3_reg(2, 0x00, 3, 1, 2))
        assert inst.mnemonic == "add"
        assert (inst.rd, inst.rs1, inst.rs2) == (3, 1, 2)
        assert not inst.uses_immediate

    def test_add_immediate_form(self):
        inst = decode(_fmt3_imm(2, 0x00, 3, 1, -7))
        assert inst.uses_immediate
        assert inst.imm == -7

    def test_load_word(self):
        inst = decode(_fmt3_imm(3, 0x00, 8, 9, 16))
        assert inst.mnemonic == "ld"
        assert inst.defn.reads_memory

    def test_store_word(self):
        inst = decode(_fmt3_imm(3, 0x04, 8, 9, 16))
        assert inst.mnemonic == "st"
        assert inst.defn.writes_memory

    def test_unsupported_op3_raises(self):
        with pytest.raises(DecodeError):
            decode(_fmt3_reg(2, 0x2F, 0, 0, 0))

    def test_unsupported_memory_op3_raises(self):
        with pytest.raises(DecodeError):
            decode(_fmt3_reg(3, 0x3F, 0, 0, 0))


class TestFormat2Decoding:
    def test_sethi(self):
        word = encoding.Format2Sethi(rd=4, imm22=0x12345).encode()
        inst = decode(word)
        assert inst.mnemonic == "sethi"
        assert inst.rd == 4
        assert inst.imm == 0x12345

    def test_branch_displacement_scaled_to_bytes(self):
        word = encoding.Format2Branch(cond=0x9, disp22=5).encode()
        inst = decode(word)
        assert inst.mnemonic == "bne"
        assert inst.disp == 20

    def test_branch_negative_displacement(self):
        word = encoding.Format2Branch(cond=0x8, disp22=-3).encode()
        inst = decode(word)
        assert inst.mnemonic == "ba"
        assert inst.disp == -12

    def test_branch_annul_flag(self):
        word = encoding.Format2Branch(cond=0x8, disp22=1, annul=True).encode()
        assert decode(word).annul is True

    def test_unimp_format2_raises(self):
        # op=0, op2=0 (UNIMP) is not part of the supported subset.
        with pytest.raises(DecodeError):
            decode(0)


class TestCallDecoding:
    def test_call_positive(self):
        word = encoding.Format1(disp30=0x40).encode()
        inst = decode(word)
        assert inst.mnemonic == "call"
        assert inst.disp == 0x100
        assert inst.rd == 15

    def test_call_negative(self):
        word = encoding.Format1(disp30=-2).encode()
        assert decode(word).disp == -8


class TestInstructionObject:
    def test_operand_registers_register_form(self):
        inst = decode(_fmt3_reg(2, 0x00, 3, 1, 2))
        assert set(inst.operand_registers()) == {1, 2}

    def test_operand_registers_store_includes_rd(self):
        inst = decode(_fmt3_imm(3, 0x04, 8, 9, 0))
        assert 8 in inst.operand_registers()

    def test_operand_registers_branch_is_empty(self):
        word = encoding.Format2Branch(cond=0x9, disp22=1).encode()
        assert decode(word).operand_registers() == ()

    def test_category_propagated_from_table(self):
        inst = decode(_fmt3_reg(2, 0x0A, 1, 2, 3))
        assert inst.defn.category is InstructionCategory.MULTIPLY

    def test_word_is_preserved(self):
        word = _fmt3_reg(2, 0x00, 3, 1, 2)
        assert decode(word).word == word
