"""Property-based tests (hypothesis) on core data structures and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import encoding
from repro.isa.assembler import assemble
from repro.isa.ccodes import ConditionCodes, evaluate_condition, icc_add, icc_sub
from repro.isa.decoder import decode
from repro.isa.encoding import to_s32, to_u32
from repro.isa.instructions import INSTRUCTION_SET
from repro.iss.memory import Memory
from repro.iss.trace import ExecutionTrace
from repro.rtl.faults import (
    ALL_FAULT_MODELS,
    FaultModel,
    PermanentFault,
    TransientFault,
)
from repro.rtl.netlist import Netlist
from repro.rtl.sites import FaultSite

words32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
registers = st.integers(min_value=0, max_value=31)
bits32 = st.integers(min_value=0, max_value=31)


class TestEncodingProperties:
    @given(rd=registers, rs1=registers, rs2=registers)
    def test_format3_register_roundtrip(self, rd, rs1, rs2):
        word = encoding.Format3Reg(op=2, op3=0x00, rd=rd, rs1=rs1, rs2=rs2).encode()
        fields = encoding.decode_format3(word)
        assert (fields["rd"], fields["rs1"], fields["rs2"]) == (rd, rs1, rs2)

    @given(imm=st.integers(min_value=-4096, max_value=4095))
    def test_simm13_roundtrip(self, imm):
        word = encoding.Format3Imm(op=2, op3=0x00, rd=1, rs1=2, simm13=imm).encode()
        assert encoding.decode_format3(word)["simm13"] == imm

    @given(disp=st.integers(min_value=-(1 << 21), max_value=(1 << 21) - 1),
           cond=st.integers(min_value=0, max_value=15),
           annul=st.booleans())
    def test_branch_roundtrip(self, disp, cond, annul):
        word = encoding.Format2Branch(cond=cond, disp22=disp, annul=annul).encode()
        decoded = encoding.Format2Branch.decode(word)
        assert (decoded.cond, decoded.disp22, decoded.annul) == (cond, disp, annul)

    @given(value=words32)
    def test_signed_unsigned_conversion_roundtrip(self, value):
        assert to_u32(to_s32(value)) == value

    @given(value=words32)
    def test_decoder_never_returns_wrong_word(self, value):
        try:
            instruction = decode(value)
        except Exception:
            return
        assert instruction.word == value
        assert instruction.mnemonic in INSTRUCTION_SET.mnemonics


class TestConditionCodeProperties:
    @given(op1=words32, op2=words32)
    def test_add_then_sub_flags_consistent_with_comparison(self, op1, op2):
        # After `subcc op1, op2`, the signed "less than" condition must agree
        # with Python's signed comparison.
        result = to_u32(op1 - op2)
        icc = icc_sub(op1, op2, result)
        assert evaluate_condition(0x3, icc) == (to_s32(op1) < to_s32(op2))  # bl
        assert evaluate_condition(0x1, icc) == (op1 == op2)                 # be

    @given(op1=words32, op2=words32)
    def test_unsigned_comparison_via_carry(self, op1, op2):
        result = to_u32(op1 - op2)
        icc = icc_sub(op1, op2, result)
        assert evaluate_condition(0x5, icc) == (op1 < op2)   # bcs / blu
        assert evaluate_condition(0xD, icc) == (op1 >= op2)  # bcc / bgeu

    @given(op1=words32, op2=words32)
    def test_add_carry_matches_wide_addition(self, op1, op2):
        result = to_u32(op1 + op2)
        icc = icc_add(op1, op2, result)
        assert icc.c == (1 if op1 + op2 > 0xFFFFFFFF else 0)

    @given(cond=st.integers(min_value=0, max_value=7),
           n=st.integers(0, 1), z=st.integers(0, 1),
           v=st.integers(0, 1), c=st.integers(0, 1))
    def test_conditions_are_complementary(self, cond, n, z, v, c):
        icc = ConditionCodes(n=n, z=z, v=v, c=c)
        assert evaluate_condition(cond, icc) != evaluate_condition(cond | 0x8, icc)


class TestMemoryProperties:
    @given(address=st.integers(min_value=0, max_value=0xFFFFFFF0).map(lambda a: a & ~3),
           value=words32)
    def test_word_write_read_roundtrip(self, address, value):
        memory = Memory()
        memory.write_word(address, value)
        assert memory.read_word(address) == value

    @given(address=st.integers(min_value=0, max_value=0xFFFFFF00),
           payload=st.binary(min_size=1, max_size=64))
    def test_byte_block_roundtrip(self, address, payload):
        memory = Memory()
        memory.write_bytes(address, payload)
        assert memory.read_bytes(address, len(payload)) == payload

    @given(address=st.integers(min_value=0, max_value=0xFFFFFFF0).map(lambda a: a & ~3),
           value=words32)
    def test_word_is_big_endian_composition_of_bytes(self, address, value):
        memory = Memory()
        memory.write_word(address, value)
        recomposed = 0
        for offset in range(4):
            recomposed = (recomposed << 8) | memory.read_byte(address + offset)
        assert recomposed == value


class TestFaultModelProperties:
    @given(value=words32, previous=words32, bit=bits32)
    def test_stuck_at_1_sets_exactly_one_bit(self, value, previous, bit):
        site = FaultSite("net", bit, "iu")
        faulted = PermanentFault(site, FaultModel.STUCK_AT_1).apply(value, previous)
        assert faulted | (1 << bit) == faulted
        assert faulted & ~(1 << bit) == value & ~(1 << bit)

    @given(value=words32, previous=words32, bit=bits32)
    def test_stuck_at_0_clears_exactly_one_bit(self, value, previous, bit):
        site = FaultSite("net", bit, "iu")
        faulted = PermanentFault(site, FaultModel.STUCK_AT_0).apply(value, previous)
        assert faulted & (1 << bit) == 0
        assert faulted | (1 << bit) == value | (1 << bit)

    @given(value=words32, previous=words32, bit=bits32)
    def test_open_line_copies_previous_bit(self, value, previous, bit):
        site = FaultSite("net", bit, "iu")
        faulted = PermanentFault(site, FaultModel.OPEN_LINE).apply(value, previous)
        assert (faulted >> bit) & 1 == (previous >> bit) & 1

    @given(value=words32, previous=words32, bit=bits32,
           model=st.sampled_from(list(ALL_FAULT_MODELS)))
    def test_fault_application_is_idempotent(self, value, previous, bit, model):
        site = FaultSite("net", bit, "iu")
        fault = PermanentFault(site, model)
        once = fault.apply(value, previous)
        twice = fault.apply(once, previous)
        assert once == twice

    @given(bit=bits32)
    def test_permanent_fault_rejects_the_transient_bucket(self, bit):
        with pytest.raises(ValueError):
            PermanentFault(FaultSite("net", bit, "iu"), FaultModel.TRANSIENT)

    @given(value=words32, bit=st.integers(min_value=0, max_value=15))
    def test_netlist_drive_respects_width_and_fault(self, value, bit):
        netlist = Netlist()
        netlist.declare("n", 16, "iu")
        netlist.inject(PermanentFault(netlist.site_for("n", bit), FaultModel.STUCK_AT_1))
        observed = netlist.drive("n", value)
        assert observed < (1 << 16)
        assert (observed >> bit) & 1 == 1


class TestTransientFaultProperties:
    windows = st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=10**4),
    )

    @given(window=windows, offset=st.integers(min_value=-(10**6), max_value=10**7))
    def test_active_exactly_inside_half_open_window(self, window, offset):
        start, duration = window
        fault = TransientFault(FaultSite("n", 0, "iu"), start, duration)
        cycle = start + offset
        assert fault.active_at(cycle) == (start <= cycle < start + duration)

    @given(value=words32, previous=words32, bit=bits32, window=windows)
    def test_apply_is_an_involution_on_its_bit(self, value, previous, bit, window):
        fault = TransientFault(FaultSite("n", bit, "iu"), *window)
        once = fault.apply(value, previous)
        assert once ^ value == 1 << bit
        assert fault.apply(once, previous) == value

    @given(value=words32, previous=words32, bit=bits32, window=windows)
    def test_apply_ignores_the_previous_value(self, value, previous, bit, window):
        """Transients are momentary inversions, not charge retention: the
        open-line 'previous value' input must be irrelevant."""
        fault = TransientFault(FaultSite("n", bit, "iu"), *window)
        assert fault.apply(value, previous) == fault.apply(value, ~previous)

    @given(start=st.integers(min_value=-(10**6), max_value=-1),
           duration=st.integers(min_value=1, max_value=100))
    def test_negative_start_rejected(self, start, duration):
        with pytest.raises(ValueError):
            TransientFault(FaultSite("n", 0, "iu"), start, duration)

    @given(start=st.integers(min_value=0, max_value=10**6),
           duration=st.integers(min_value=-100, max_value=0))
    def test_non_positive_duration_rejected(self, start, duration):
        with pytest.raises(ValueError):
            TransientFault(FaultSite("n", 0, "iu"), start, duration)


class TestDiversityProperties:
    @settings(max_examples=25)
    @given(opcodes=st.lists(st.sampled_from(["add", "sub", "sll", "ld", "st", "umul"]),
                            min_size=1, max_size=60))
    def test_diversity_is_permutation_invariant(self, opcodes):
        """The paper's key property: for permanent faults the metric must not
        depend on the order in which instructions execute."""
        from repro.isa.encoding import Format3Imm
        from repro.isa.instructions import INSTRUCTION_SET as table

        def trace_for(sequence):
            trace = ExecutionTrace()
            for mnemonic in sequence:
                defn = table.by_mnemonic(mnemonic)
                word = Format3Imm(op=defn.op, op3=defn.op3, rd=1, rs1=1, simm13=0).encode()
                trace.record(decode(word), 0, 0)
            return trace

        forward = trace_for(opcodes)
        backward = trace_for(list(reversed(opcodes)))
        assert forward.diversity == backward.diversity
        assert forward.diversity == len(set(opcodes))

    @settings(max_examples=25)
    @given(opcodes=st.lists(st.sampled_from(["add", "sub", "sll", "ld"]),
                            min_size=1, max_size=30),
           extra=st.sampled_from(["umul", "sdiv", "xor"]))
    def test_diversity_monotone_under_new_opcode(self, opcodes, extra):
        base = len(set(opcodes))
        extended = len(set(opcodes + [extra]))
        assert extended >= base


class TestAssemblerEmulatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(min_value=0, max_value=0x7FFFFFFF),
           b=st.integers(min_value=0, max_value=0x7FFFFFFF))
    def test_add_program_matches_python_semantics(self, a, b):
        from repro.iss.emulator import run_program

        source = f"""
        .text
        set     out, %l1
        set     {a}, %o0
        set     {b}, %o1
        add     %o0, %o1, %o2
        st      %o2, [%l1]
        ta      0
        .data
out:
        .space  4
"""
        result = run_program(assemble(source))
        assert result.transactions[-1].value == (a + b) & 0xFFFFFFFF

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(min_value=1, max_value=0xFFFF),
           b=st.integers(min_value=1, max_value=0xFFFF))
    def test_mul_div_roundtrip_property(self, a, b):
        from repro.iss.emulator import run_program

        source = f"""
        .text
        set     out, %l1
        set     {a}, %o0
        set     {b}, %o1
        umul    %o0, %o1, %o2
        wr      %g0, 0, %y
        udiv    %o2, %o1, %o3
        st      %o3, [%l1]
        ta      0
        .data
out:
        .space  4
"""
        result = run_program(assemble(source))
        assert result.transactions[-1].value == a
