"""Tests for the execution-backend / campaign-engine layer."""

import pytest

from conftest import SMALL_PROGRAM_SOURCE

from repro.engine import (
    CampaignConfig,
    CampaignEngine,
    InjectionJob,
    IssBackend,
    Leon3RtlBackend,
    MultiprocessingScheduler,
    SerialScheduler,
    make_scheduler,
    plan_jobs,
    watchdog_budget,
)
from repro.engine.schedulers import chunk_jobs
from repro.faultinjection.campaign import FaultInjectionCampaign
from repro.faultinjection.comparison import FailureClass, compare_runs
from repro.isa.assembler import assemble
from repro.rtl.faults import ALL_FAULT_MODELS, FaultModel, PermanentFault

#: A program whose loop counter goes through the ALU adder: stuck-at-0 on the
#: adder's sum bit 0 turns `inc` into a no-op and the loop never terminates,
#: which is the deterministic hang used by the watchdog tests.
LOOP_PROGRAM_SOURCE = """
        .text
start:
        set     result, %l1
        mov     0, %l2
loop:
        inc     %l2
        cmp     %l2, 4
        bl      loop
        nop
        st      %l2, [%l1]
        ta      0

        .data
result:
        .space  4
"""


@pytest.fixture(scope="module")
def small_program():
    return assemble(SMALL_PROGRAM_SOURCE, name="small")


@pytest.fixture(scope="module")
def loop_program():
    return assemble(LOOP_PROGRAM_SOURCE, name="loop")


class TestBackends:
    def test_rtl_and_iss_golden_runs_agree_off_core(self, small_program):
        results = {}
        for factory in (Leon3RtlBackend, IssBackend):
            backend = factory()
            backend.prepare(small_program)
            results[backend.name] = backend.run(max_instructions=100_000)
        rtl, iss = results["rtl"], results["iss"]
        assert rtl.normal_exit and iss.normal_exit
        assert len(rtl.transactions) == len(iss.transactions)
        assert all(
            a.matches(b) for a, b in zip(rtl.transactions, iss.transactions)
        )

    def test_run_before_prepare_raises(self, small_program):
        with pytest.raises(RuntimeError):
            Leon3RtlBackend().run(max_instructions=10)
        with pytest.raises(RuntimeError):
            IssBackend().run(max_instructions=10)

    def test_rtl_backend_resets_between_runs(self, small_program):
        backend = Leon3RtlBackend()
        backend.prepare(small_program)
        golden = backend.run(max_instructions=100_000)
        site = backend.core.netlist.site_for("alu.adder.sum", 0)
        backend.run(
            max_instructions=100_000,
            faults=[PermanentFault(site, FaultModel.STUCK_AT_1)],
        )
        clean = backend.run(max_instructions=100_000)
        assert clean.normal_exit
        assert len(clean.transactions) == len(golden.transactions)
        assert all(
            a.matches(b) for a, b in zip(golden.transactions, clean.transactions)
        )

    def test_iss_backend_exposes_architectural_sites(self, small_program):
        backend = IssBackend()
        assert backend.sites.count(["arch.regfile"]) == 32 * 32

    def test_iss_backend_injects_register_fault(self, small_program):
        backend = IssBackend()
        backend.prepare(small_program)
        golden = backend.run(max_instructions=100_000)
        # %l0 (r16) holds the input pointer; sticking a high address bit
        # guarantees a divergence.
        site = next(
            s
            for s in backend.sites.iter_sites(["arch.regfile"])
            if s.index == 16 and s.bit == 20
        )
        faulty = backend.run(
            max_instructions=watchdog_budget(golden.instructions),
            faults=[PermanentFault(site, FaultModel.STUCK_AT_1)],
        )
        assert compare_runs(golden, faulty).is_failure

    def test_iss_backend_rejects_rtl_sites(self, small_program):
        backend = IssBackend()
        backend.prepare(small_program)
        rtl = Leon3RtlBackend()
        rtl.prepare(small_program)
        site = rtl.core.netlist.site_for("alu.adder.sum", 0)
        with pytest.raises(ValueError):
            backend.run(
                max_instructions=100,
                faults=[PermanentFault(site, FaultModel.STUCK_AT_1)],
            )


class TestPlanning:
    def test_jobs_enumerate_models_over_shared_sites(self, small_program):
        engine = CampaignEngine(
            small_program,
            CampaignConfig(unit_scope="iu", sample_size=5, seed=1),
        )
        plan = engine.plan()
        assert plan.total_jobs == 5 * len(ALL_FAULT_MODELS)
        assert [job.index for job in plan.jobs] == list(range(plan.total_jobs))
        for model in ALL_FAULT_MODELS:
            model_sites = [j.site for j in plan.jobs if j.fault_model is model]
            assert model_sites == plan.sites

    def test_plan_reuses_one_golden_run(self, small_program):
        engine = CampaignEngine(
            small_program, CampaignConfig(unit_scope="iu", sample_size=3)
        )
        first = engine.plan()
        second = engine.plan()
        assert first.golden is second.golden

    def test_chunk_jobs_covers_all_jobs_in_order(self):
        jobs = plan_jobs(
            sites=[],
            fault_models=[],
            workload="w",
        )
        assert chunk_jobs(jobs, n_workers=4) == []
        jobs = [
            InjectionJob(index=i, site=None, fault_model=FaultModel.STUCK_AT_1,
                         workload="w")
            for i in range(10)
        ]
        batches = chunk_jobs(jobs, n_workers=3, chunk_size=4)
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert [job.index for batch in batches for job in batch] == list(range(10))

    def test_make_scheduler_auto_selects(self):
        assert isinstance(make_scheduler(None, 1), SerialScheduler)
        assert isinstance(make_scheduler(None, 4), MultiprocessingScheduler)
        assert isinstance(make_scheduler("serial", 4), SerialScheduler)
        with pytest.raises(ValueError):
            make_scheduler("threads", 2)


class TestSchedulers:
    def _config(self, **overrides):
        defaults = {
            "unit_scope": "iu",
            "sample_size": 6,
            "fault_models": [FaultModel.STUCK_AT_1, FaultModel.STUCK_AT_0],
            "seed": 11,
        }
        defaults.update(overrides)
        return CampaignConfig(**defaults)

    def test_serial_and_multiprocessing_results_identical(self, small_program):
        serial = CampaignEngine(small_program, self._config(n_workers=1)).run()
        parallel = CampaignEngine(
            small_program, self._config(n_workers=2, chunk_size=3)
        ).run()
        assert serial.keys() == parallel.keys()
        for model in serial:
            s, p = serial[model], parallel[model]
            assert s.outcomes == p.outcomes  # same faults, classes, cycles, order
            assert s.failure_probability == p.failure_probability
            assert s.classification_histogram() == p.classification_histogram()
            assert s.golden_instructions == p.golden_instructions

    def test_progress_callback_streams_every_job(self, small_program):
        seen = []
        engine = CampaignEngine(small_program, self._config())
        engine.run(progress=lambda done, total, outcome: seen.append((done, total)))
        total = 6 * 2
        assert seen == [(i, total) for i in range(1, total + 1)]

    def test_campaign_facade_exposes_n_workers(self, small_program):
        config = self._config(n_workers=2, chunk_size=4)
        campaign = FaultInjectionCampaign(small_program, config)
        results = campaign.run()
        result = results[FaultModel.STUCK_AT_1]
        assert result.injections == 6
        assert result.simulation_seconds > 0


class TestWatchdog:
    def test_injected_infinite_loop_trips_watchdog(self, loop_program):
        engine = CampaignEngine(loop_program, CampaignConfig(unit_scope="iu"))
        golden = engine.golden_run()
        assert golden.normal_exit
        backend = engine.backend
        budget = watchdog_budget(golden.instructions)
        # Stuck-at-0 on the adder sum LSB makes `inc %l2` a no-op: the loop
        # counter never advances and the program spins forever.
        site = backend.core.netlist.site_for("alu.adder.sum", 0)
        faulty = backend.run(
            max_instructions=budget,
            faults=[PermanentFault(site, FaultModel.STUCK_AT_0)],
        )
        assert not faulty.halted
        assert faulty.instructions == budget
        assert compare_runs(golden, faulty).failure_class is FailureClass.HANG

    def test_iss_budget_exhaustion_normalised_to_hang(self, loop_program):
        backend = IssBackend()
        backend.prepare(loop_program)
        golden = backend.run(max_instructions=100_000)
        assert golden.normal_exit
        # An artificially tiny budget stands in for an injected infinite
        # loop; the emulator's "watchdog" trap must surface as a HANG, the
        # same class the RTL backend produces.
        starved = backend.run(max_instructions=5)
        assert not starved.halted
        assert starved.trap_kind is None
        assert compare_runs(golden, starved).failure_class is FailureClass.HANG

    def test_hang_classified_through_engine_campaign(self, loop_program):
        engine = CampaignEngine(loop_program, CampaignConfig(unit_scope="iu"))
        site = engine.backend.core.netlist.site_for("alu.adder.sum", 0)
        result = engine.run_model(FaultModel.STUCK_AT_0, sites=[site])
        assert result.injections == 1
        assert result.classification_histogram() == {FailureClass.HANG: 1}
        budget = watchdog_budget(engine.golden_run().instructions)
        assert result.outcomes[0].faulty_instructions == budget


class TestPoisonedJob:
    """A SimulationError raised inside the emulator must surface as a
    classified TRAP outcome, not escape ``Emulator.run()`` and abort the
    campaign (in a multiprocessing campaign it would kill the worker chunk).
    """

    #: Golden control flow never reaches the poisoned opcode; a stuck-at-1 on
    #: %o0 diverts the faulty run onto it.
    POISONED_SOURCE = """
        .text
        set     flag, %l0
        ld      [%l0], %o0
        cmp     %o0, 0
        be      done
        nop
        xnor    %o0, %o0, %o1          ! poisoned: only the faulty run gets here
done:
        mov     0, %o0
        ta      0
        .data
flag:
        .word   0
"""

    def _poisoned_campaign(self, backend_factory):
        from repro.engine.backend import ARCH_REGFILE_UNIT
        from repro.rtl.sites import FaultSite

        program = assemble(self.POISONED_SOURCE, name="poisoned")
        config = CampaignConfig(
            unit_scope=ARCH_REGFILE_UNIT, sample_size=1, max_instructions=10_000
        )
        engine = CampaignEngine(program, config, backend_factory=backend_factory)
        site = FaultSite(net="regfile", bit=0, unit=ARCH_REGFILE_UNIT, index=8)
        return engine.run(fault_models=[FaultModel.STUCK_AT_1], sites=[site])

    def test_reference_interpreter_poisoned_job_yields_trap(self, monkeypatch):
        from repro.iss.emulator import Emulator, SimulationError

        original = Emulator._execute_alu

        def poisoned(self, instruction):
            if instruction.defn.mnemonic == "xnor":
                raise SimulationError("no ALU semantics for xnor")
            return original(self, instruction)

        monkeypatch.setattr(Emulator, "_execute_alu", poisoned)
        results = self._poisoned_campaign(lambda: IssBackend(fast=False))
        outcomes = results[FaultModel.STUCK_AT_1].outcomes
        assert len(outcomes) == 1
        assert outcomes[0].failure_class is FailureClass.TRAP
        assert outcomes[0].is_failure

    def test_fast_interpreter_poisoned_job_yields_trap(self, monkeypatch):
        import repro.iss.fastpath as fastpath

        monkeypatch.setitem(
            fastpath._HANDLER_TABLE, "xnor", fastpath._h_unimplemented
        )
        results = self._poisoned_campaign(IssBackend)
        outcomes = results[FaultModel.STUCK_AT_1].outcomes
        assert len(outcomes) == 1
        assert outcomes[0].failure_class is FailureClass.TRAP
        assert outcomes[0].is_failure
