"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.iss.emulator import Emulator
from repro.iss.memory import Memory
from repro.leon3.core import Leon3Core


#: A small but representative program: data loads, arithmetic, a loop with a
#: conditional branch, shifts, a store-back of every result and a clean exit.
SMALL_PROGRAM_SOURCE = """
        .text
start:
        set     data_in, %l0
        set     data_out, %l1
        ld      [%l0], %o0
        ld      [%l0 + 4], %o1
        add     %o0, %o1, %o2
        st      %o2, [%l1]
        umul    %o0, %o1, %o3
        st      %o3, [%l1 + 4]
        mov     0, %l2
        mov     0, %l3
loop:
        add     %l3, %l2, %l3
        inc     %l2
        cmp     %l2, 10
        bl      loop
        nop
        st      %l3, [%l1 + 8]
        sll     %o0, 3, %o4
        srl     %o1, 1, %o5
        xor     %o4, %o5, %o4
        st      %o4, [%l1 + 12]
        ta      0

        .data
data_in:
        .word   7, 5
data_out:
        .space  32
"""


@pytest.fixture
def small_program():
    """The assembled small reference program."""
    return assemble(SMALL_PROGRAM_SOURCE, name="small")


@pytest.fixture
def emulator():
    """A fresh ISS emulator with its own memory."""
    return Emulator(memory=Memory())


@pytest.fixture
def rtl_core():
    """A fresh structural Leon3 core."""
    return Leon3Core()


def run_asm(source: str, max_instructions: int = 100_000):
    """Assemble and run *source* on the ISS, returning the execution result."""
    program = assemble(source, name="test")
    emulator = Emulator(memory=Memory())
    emulator.load_program(program)
    return emulator.run(max_instructions=max_instructions), emulator


@pytest.fixture
def run_assembly():
    """Fixture-wrapped :func:`run_asm` helper."""
    return run_asm
