"""Targeted fault-effect tests on the structural Leon3 integer unit.

These tests pin down *how* specific fault locations manifest, which is the
mechanism behind the paper's diversity argument: front-end faults disturb
every workload, execution-resource faults only disturb workloads whose
instruction mix exercises that resource.
"""

import pytest

from repro.faultinjection.comparison import FailureClass, compare_runs
from repro.isa.assembler import assemble
from repro.leon3.core import Leon3Core, run_program_rtl
from repro.rtl.faults import FaultModel, PermanentFault


ARITH_PROGRAM = """
        .text
        set     out, %l1
        mov     9, %o0
        mov     4, %o1
        add     %o0, %o1, %o2
        st      %o2, [%l1]
        sub     %o0, %o1, %o3
        st      %o3, [%l1 + 4]
        ta      0
        .data
out:
        .space  16
"""

SHIFT_PROGRAM = """
        .text
        set     out, %l1
        mov     3, %o0
        sll     %o0, 4, %o2
        st      %o2, [%l1]
        ta      0
        .data
out:
        .space  8
"""


def _faulty_run(program_source, net, bit, model=FaultModel.STUCK_AT_1):
    program = assemble(program_source, name="fault-effects")
    golden = run_program_rtl(program)
    core = Leon3Core()
    core.load_program(program)
    core.inject([PermanentFault(core.netlist.site_for(net, bit), model)])
    faulty = core.run(max_instructions=golden.instructions * 2 + 100)
    return golden, faulty


class TestFrontEndFaults:
    def test_fetch_pc_fault_breaks_any_program(self):
        golden, faulty = _faulty_run(ARITH_PROGRAM, "iu.fe.pc", 31)
        comparison = compare_runs(golden, faulty)
        assert comparison.is_failure

    def test_instruction_bus_fault_corrupts_decoding(self):
        golden, faulty = _faulty_run(ARITH_PROGRAM, "iu.fe.inst", 30)
        comparison = compare_runs(golden, faulty)
        assert comparison.is_failure

    def test_decode_rd_fault_redirects_results(self):
        # Sticking a bit of the destination-register field sends ALU results
        # to the wrong register, so the stored values change.
        golden, faulty = _faulty_run(ARITH_PROGRAM, "iu.de.rd", 4)
        comparison = compare_runs(golden, faulty)
        assert comparison.is_failure


class TestExecutionResourceFaults:
    def test_adder_fault_corrupts_arithmetic_program(self):
        golden, faulty = _faulty_run(ARITH_PROGRAM, "alu.adder.sum", 1)
        comparison = compare_runs(golden, faulty)
        assert comparison.is_failure

    def test_shifter_fault_masked_for_arithmetic_program(self):
        # ARITH_PROGRAM never shifts, so shifter faults cannot propagate.
        golden, faulty = _faulty_run(ARITH_PROGRAM, "alu.shift.result", 7)
        comparison = compare_runs(golden, faulty)
        assert comparison.failure_class is FailureClass.NO_EFFECT

    def test_shifter_fault_hits_shift_program(self):
        golden, faulty = _faulty_run(SHIFT_PROGRAM, "alu.shift.result", 0)
        comparison = compare_runs(golden, faulty)
        assert comparison.is_failure

    def test_multiplier_fault_masked_without_multiplications(self):
        golden, faulty = _faulty_run(SHIFT_PROGRAM, "alu.mult.result_lo", 3)
        comparison = compare_runs(golden, faulty)
        assert comparison.failure_class is FailureClass.NO_EFFECT

    @pytest.mark.parametrize("model", [FaultModel.STUCK_AT_1, FaultModel.STUCK_AT_0,
                                       FaultModel.OPEN_LINE])
    def test_unused_divider_masked_for_all_models(self, model):
        golden, faulty = _faulty_run(ARITH_PROGRAM, "alu.div.quotient", 9, model)
        assert compare_runs(golden, faulty).failure_class is FailureClass.NO_EFFECT


class TestMemoryPathFaults:
    def test_store_data_fault_changes_observed_value(self):
        golden, faulty = _faulty_run(ARITH_PROGRAM, "iu.lsu.wdata", 5)
        comparison = compare_runs(golden, faulty)
        assert comparison.failure_class in (FailureClass.WRONG_DATA, FailureClass.WRONG_ADDRESS)

    def test_store_address_fault_redirects_the_write(self):
        golden, faulty = _faulty_run(ARITH_PROGRAM, "iu.lsu.addr", 3)
        comparison = compare_runs(golden, faulty)
        assert comparison.is_failure

    def test_bus_data_fault_visible_to_lockstep_comparator(self):
        # Bit 1 is 0 in both stored values (13 and 5), so sticking it to 1
        # must corrupt what the lockstep comparator observes.
        golden, faulty = _faulty_run(ARITH_PROGRAM, "bus.wdata", 1)
        comparison = compare_runs(golden, faulty)
        assert comparison.is_failure


class TestStateFaults:
    def test_psr_icc_fault_only_matters_with_conditional_branches(self):
        # ARITH_PROGRAM has no conditional branch and no cc-consuming
        # instruction, so a stuck condition-code bit is architecturally
        # invisible at the off-core boundary.
        golden, faulty = _faulty_run(ARITH_PROGRAM, "psr.icc", 3)
        assert compare_runs(golden, faulty).failure_class is FailureClass.NO_EFFECT

    def test_branch_target_fault_disrupts_looping_program(self):
        source = """
        .text
        set     out, %l1
        mov     0, %o0
        mov     0, %o1
loop:
        add     %o1, %o0, %o1
        inc     %o0
        cmp     %o0, 6
        bl      loop
        nop
        st      %o1, [%l1]
        ta      0
        .data
out:
        .space  8
"""
        golden, faulty = _faulty_run(source, "iu.branch.target", 2)
        assert compare_runs(golden, faulty).is_failure
