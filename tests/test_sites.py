"""Tests for fault-site enumeration and sampling."""

import pytest

from repro.rtl.sites import FaultSite, SiteUniverse, sites_per_unit


@pytest.fixture
def universe():
    u = SiteUniverse()
    u.add_net("iu.a", 8, "iu.alu.adder")
    u.add_net("iu.b", 4, "iu.decode")
    u.add_array("cmem.data", 16, 10, "cmem.dcache")
    return u


class TestCounting:
    def test_total_count(self, universe):
        assert universe.count() == 8 + 4 + 160

    def test_scoped_count(self, universe):
        assert universe.count(["iu"]) == 12
        assert universe.count(["cmem"]) == 160

    def test_nested_scope_prefix(self, universe):
        assert universe.count(["iu.alu"]) == 8
        assert universe.count(["iu.alu.adder"]) == 8

    def test_prefix_must_match_path_component(self, universe):
        # "iu.a" is a net name, not a unit: the unit of that net is iu.alu.adder,
        # and the filter "iu.al" must not match it by raw string prefix.
        assert universe.count(["iu.al"]) == 0

    def test_count_by_unit(self, universe):
        counts = universe.count_by_unit()
        assert counts["iu.alu.adder"] == 8
        assert counts["cmem.dcache"] == 160

    def test_units_listing(self, universe):
        assert set(universe.units()) == {"iu.alu.adder", "iu.decode", "cmem.dcache"}

    def test_sites_per_unit_helper(self, universe):
        assert sites_per_unit(universe, ["iu", "cmem"]) == {"iu": 12, "cmem": 160}


class TestEnumeration:
    def test_iter_sites_complete(self, universe):
        sites = list(universe.iter_sites(["iu"]))
        assert len(sites) == 12
        assert all(isinstance(site, FaultSite) for site in sites)

    def test_net_sites_have_no_index(self, universe):
        sites = list(universe.iter_sites(["iu.decode"]))
        assert all(site.index is None for site in sites)
        assert {site.bit for site in sites} == set(range(4))

    def test_array_sites_carry_cell_index(self, universe):
        sites = list(universe.iter_sites(["cmem"]))
        assert {site.index for site in sites} == set(range(10))
        assert all(0 <= site.bit < 16 for site in sites)

    def test_describe_format(self):
        assert FaultSite("n", 3, "iu").describe() == "n.bit3 (iu)"
        assert FaultSite("a", 1, "cmem", index=4).describe() == "a[4].bit1 (cmem)"


class TestSampling:
    def test_sample_is_reproducible_with_seed(self, universe):
        first = universe.sample(20, seed=42)
        second = universe.sample(20, seed=42)
        assert first == second

    def test_sample_respects_scope(self, universe):
        sites = universe.sample(10, units=["cmem"], seed=1)
        assert all(site.unit == "cmem.dcache" for site in sites)

    def test_sample_size_honoured(self, universe):
        assert len(universe.sample(25, seed=7)) == 25

    def test_sample_without_replacement(self, universe):
        sites = universe.sample(50, seed=3)
        assert len(set(sites)) == 50

    def test_oversampling_returns_full_population(self, universe):
        sites = universe.sample(10_000, units=["iu"], seed=5)
        assert len(sites) == 12

    def test_sample_from_empty_scope(self, universe):
        assert universe.sample(5, units=["fpu"], seed=0) == []

    def test_different_seeds_differ(self, universe):
        assert universe.sample(30, seed=1) != universe.sample(30, seed=2)

    def test_merge_combines_universes(self):
        first = SiteUniverse()
        first.add_net("a", 2, "iu")
        second = SiteUniverse()
        second.add_net("b", 3, "cmem")
        merged = first.merge(second)
        assert merged.count() == 5
