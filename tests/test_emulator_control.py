"""ISS functional emulator: control transfer, delay slots, windows, traps."""

from conftest import run_asm


def _program(body: str) -> str:
    return f"""
        .text
        set     out, %l1
{body}
        ta      0
        .data
out:
        .space  64
"""


class TestBranches:
    def test_taken_branch_executes_delay_slot(self):
        source = _program("""
        mov     0, %o0
        ba      target
        mov     1, %o0                 ! delay slot must execute
        mov     2, %o0                 ! skipped
target:
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 1

    def test_untaken_branch_executes_delay_slot(self):
        source = _program("""
        mov     0, %o0
        subcc   %g0, 0, %g0            ! Z=1
        bne     target
        mov     1, %o0                 ! delay slot executes
target:
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 1

    def test_annulled_branch_always_skips_delay_slot(self):
        source = _program("""
        mov     0, %o0
        ba,a    target
        mov     1, %o0                 ! annulled
target:
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0

    def test_untaken_annulled_conditional_skips_delay_slot(self):
        source = _program("""
        mov     0, %o0
        subcc   %g0, 0, %g0            ! Z=1
        bne,a   target
        mov     1, %o0                 ! annulled because branch is not taken
target:
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0

    def test_taken_annulled_conditional_executes_delay_slot(self):
        source = _program("""
        mov     0, %o0
        subcc   %g0, 0, %g0            ! Z=1
        be,a    target
        mov     1, %o0                 ! executed because the branch is taken
target:
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 1

    def test_loop_counts_correctly(self):
        source = _program("""
        mov     0, %o0
        mov     0, %o1
loop:
        add     %o1, %o0, %o1
        inc     %o0
        cmp     %o0, 5
        bl      loop
        nop
        st      %o1, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0 + 1 + 2 + 3 + 4

    def test_unsigned_branch_on_wraparound(self):
        source = _program("""
        set     0xFFFFFFFF, %o0
        cmp     %o0, 1
        bgu     bigger
        nop
        mov     0, %o2
        ba      done
        nop
bigger:
        mov     1, %o2
done:
        st      %o2, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 1


class TestCallAndReturn:
    def test_call_and_retl(self):
        source = _program("""
        mov     3, %o0
        call    double_it
        nop
        st      %o0, [%l1]
        ba      finish
        nop
double_it:
        retl
        add     %o0, %o0, %o0          ! delay slot of retl
finish:
        nop
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 6

    def test_call_stores_return_address_in_o7(self):
        source = _program("""
        call    grab
        nop
        ba      finish
        nop
grab:
        st      %o7, [%l1]
        retl
        nop
finish:
        nop
""")
        result, _ = run_asm(source)
        # %o7 holds the address of the call instruction itself; one `set`
        # expansion (2 words) precedes the call in the program template.
        program_base = 0x40000000
        assert result.transactions[0].value == program_base + 2 * 4

    def test_nested_call_with_register_window(self):
        source = _program("""
        mov     10, %o0
        call    outer
        nop
        st      %o0, [%l1]
        ba      finish
        nop
outer:
        save    %sp, -96, %sp
        mov     %i0, %o0
        call    inner
        nop
        add     %o0, 1, %i0            ! result + 1
        ret
        restore
inner:
        retl
        add     %o0, 5, %o0
finish:
        nop
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 16

    def test_jmpl_indirect_jump(self):
        source = _program("""
        set     table_target, %g1
        jmpl    %g1, 0, %g2
        nop
        mov     0, %o0                 ! skipped
        ba      finish
        nop
table_target:
        mov     7, %o0
finish:
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 7


class TestWindowsAndTraps:
    def test_save_restore_passes_values(self):
        source = _program("""
        mov     21, %o0
        save    %sp, -96, %sp
        add     %i0, %i0, %i0
        restore
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 42

    def test_window_overflow_traps(self):
        body = "\n".join("        save    %sp, -96, %sp" for _ in range(9))
        result, _ = run_asm(_program(body))
        assert result.halted and result.trap.kind == "window"

    def test_window_underflow_traps(self):
        result, _ = run_asm(_program("        restore"))
        assert result.halted and result.trap.kind == "window"

    def test_exit_trap_reports_code(self):
        source = """
        .text
        mov     5, %o0
        ta      0
"""
        result, _ = run_asm(source)
        assert result.normal_exit
        assert result.exit_code == 5

    def test_non_zero_software_trap(self):
        source = ".text\n        ta      3\n"
        result, _ = run_asm(source)
        assert result.halted
        assert result.trap.kind == "software_trap"
        assert not result.normal_exit

    def test_illegal_instruction_traps(self):
        source = """
        .text
        set     garbage, %l0
        jmpl    %l0, 0, %g0
        nop
        .data
garbage:
        .word   0xFFFFFFFF
"""
        result, _ = run_asm(source)
        assert result.halted
        assert result.trap.kind == "illegal_instruction"

    def test_watchdog_stops_infinite_loop(self):
        source = ".text\nforever:\n        ba      forever\n        nop\n"
        result, _ = run_asm(source, max_instructions=500)
        assert not result.halted
        assert result.trap is not None and result.trap.kind == "watchdog"
        assert result.instructions == 500

    def test_instruction_count_and_cycles_accumulate(self, small_program=None):
        source = _program("""
        mov     1, %o0
        umul    %o0, %o0, %o1
        st      %o1, [%l1]
""")
        result, _ = run_asm(source)
        assert result.instructions > 0
        assert result.cycles >= result.instructions  # multi-cycle ops counted
