"""Tests for the timing model and the execution trace."""

from repro.isa.decoder import decode
from repro.isa.encoding import Format3Imm, Format3Reg
from repro.isa.instructions import FunctionalUnit, InstructionCategory
from repro.iss.timing import TimingModel, TimingReport
from repro.iss.trace import ExecutionTrace, OffCoreTransaction

from conftest import run_asm


def _decoded(mnemonic_op3, op=2, imm=None):
    if imm is None:
        return decode(Format3Reg(op=op, op3=mnemonic_op3, rd=1, rs1=2, rs2=3).encode())
    return decode(Format3Imm(op=op, op3=mnemonic_op3, rd=1, rs1=2, simm13=imm).encode())


class TestTimingModel:
    def test_latency_accumulates_per_instruction(self):
        timing = TimingModel()
        add = _decoded(0x00)
        timing.account(add)
        timing.account(add)
        assert timing.cycles == 2 * add.defn.latency
        assert timing.instructions == 2

    def test_divide_is_slower_than_add(self):
        timing = TimingModel()
        timing.account(_decoded(0x0E))  # udiv
        divide_cycles = timing.cycles
        timing.reset()
        timing.account(_decoded(0x00))  # add
        assert divide_cycles > timing.cycles

    def test_latency_override(self):
        timing = TimingModel()
        timing.set_latency("add", 10)
        timing.account(_decoded(0x00))
        assert timing.cycles == 10

    def test_first_access_to_line_misses(self):
        timing = TimingModel()
        timing.account_data_access(0x1000, is_store=False)
        timing.account_data_access(0x1004, is_store=False)  # same line
        assert timing.dcache_misses == 1
        assert timing.dcache_hits == 1

    def test_miss_penalty_added_to_cycles(self):
        timing = TimingModel(miss_penalty=50)
        timing.account_data_access(0x2000, is_store=False)
        assert timing.cycles == 50

    def test_report_contents(self):
        timing = TimingModel()
        timing.account(_decoded(0x00))
        report = timing.report()
        assert isinstance(report, TimingReport)
        assert report.instructions == 1
        assert report.cpi >= 1.0
        assert report.microseconds > 0

    def test_reset_clears_counters(self):
        timing = TimingModel()
        timing.account(_decoded(0x00))
        timing.account_data_access(0, is_store=True)
        timing.reset()
        assert timing.cycles == 0
        assert timing.dcache_misses == 0


class TestExecutionTrace:
    def test_diversity_counts_distinct_opcodes(self):
        trace = ExecutionTrace()
        add = _decoded(0x00)
        sub = _decoded(0x04)
        for _ in range(3):
            trace.record(add, 0, 0)
        trace.record(sub, 4, 1)
        assert trace.diversity == 2
        assert trace.total_instructions == 4

    def test_opcode_histogram(self):
        trace = ExecutionTrace()
        trace.record(_decoded(0x00), 0, 0)
        trace.record(_decoded(0x00), 4, 1)
        assert trace.opcode_histogram() == {"add": 2}

    def test_unit_diversity_tracks_units(self):
        trace = ExecutionTrace()
        trace.record(_decoded(0x25), 0, 0)  # sll
        trace.record(_decoded(0x26), 4, 1)  # srl
        trace.record(_decoded(0x00), 8, 2)  # add
        assert trace.unit_diversity(FunctionalUnit.SHIFTER) == 2
        assert trace.unit_diversity(FunctionalUnit.ALU_ADDER) == 1
        assert trace.unit_diversity(FunctionalUnit.FETCH) == 3

    def test_memory_counters(self):
        trace = ExecutionTrace()
        trace.record(_decoded(0x00, op=3), 0, 0)  # ld
        trace.record(_decoded(0x04, op=3), 4, 1)  # st
        assert trace.memory_reads == 1
        assert trace.memory_writes == 1
        assert trace.memory_instructions == 2

    def test_detailed_trace_keeps_records(self):
        trace = ExecutionTrace(detailed=True)
        trace.record(_decoded(0x00), 0x40000000, 5)
        assert len(trace.records) == 1
        record = trace.records[0]
        assert record.pc == 0x40000000
        assert record.mnemonic == "add"
        assert record.category is InstructionCategory.ARITHMETIC

    def test_aggregate_trace_skips_records(self):
        trace = ExecutionTrace(detailed=False)
        trace.record(_decoded(0x00), 0, 0)
        assert trace.records == []

    def test_merge_combines_counts(self):
        first = ExecutionTrace()
        second = ExecutionTrace()
        first.record(_decoded(0x00), 0, 0)
        second.record(_decoded(0x04), 0, 0)
        merged = first.merge(second)
        assert merged.total_instructions == 2
        assert merged.diversity == 2

    def test_integer_unit_excludes_traps(self, run_assembly):
        result, _ = run_assembly(".text\n        mov 1, %o0\n        ta 0\n")
        trace = result.trace
        assert trace.integer_unit_instructions == trace.total_instructions - 1


class TestOffCoreTransaction:
    def test_matching_transactions(self):
        a = OffCoreTransaction("store", 0x100, 5, 4)
        b = OffCoreTransaction("store", 0x100, 5, 4)
        assert a.matches(b)

    def test_mismatching_value(self):
        a = OffCoreTransaction("store", 0x100, 5, 4)
        b = OffCoreTransaction("store", 0x100, 6, 4)
        assert not a.matches(b)

    def test_mismatching_kind_or_size(self):
        a = OffCoreTransaction("store", 0x100, 5, 4)
        assert not a.matches(OffCoreTransaction("io", 0x100, 5, 4))
        assert not a.matches(OffCoreTransaction("store", 0x100, 5, 2))
