"""Tests for the observability subsystem (metrics, manifests, traces).

The acceptance properties of :mod:`repro.obs` live here:

* **Scheduler transparency** — a serial and a multiprocessing run of the
  same campaign produce *equal* counter and histogram values (wall-clock
  timing series excluded), because worker snapshots merge additively and
  order-transparently.
* **Reconciliation** — lockstep resolution counts add up to the replica
  count, and demotion-reason counts add up to the demoted resolutions, so
  the telemetry is an account of the run rather than an approximation.
* **Store transparency** — campaign keys are byte-identical with telemetry
  on and off (pinned against the exact key PR 2..6 stored campaigns under),
  and run manifests live beside the campaign, never in its key.
* **Trace export** — per-PID JSONL sidecars merge into a Chrome
  trace-event file Perfetto can load.
"""

import json
import pickle

import pytest

from repro.engine import CampaignConfig, CampaignEngine, IssBackend
from repro.obs.events import EventLog, export_chrome_trace, sidecar_paths
from repro.obs.telemetry import (
    TELEMETRY,
    Histogram,
    TelemetryRegistry,
    bucket_bound,
    series_name,
    split_series_name,
)
from repro.rtl.faults import FaultModel
from repro.store import CampaignStore
from repro.store.cli import main as cli_main
from repro.workloads import build_program


@pytest.fixture(autouse=True)
def _clean_registry():
    """Leave the process-local registry as this test found it."""
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
    if TELEMETRY.events is not None:
        TELEMETRY.events.close()
        TELEMETRY.events = None


def _snapshot_of(config_overrides, workload="rspeed"):
    """Run one direct (store-less) campaign and return the merged snapshot."""
    program = build_program(workload)
    config = CampaignConfig(
        unit_scope="arch.regfile",
        sample_size=4,
        seed=3,
        transient_windows=2,
        **config_overrides,
    )
    CampaignEngine(program, config, backend_factory=IssBackend).run()
    return TELEMETRY.snapshot()


def _without_timings(snapshot):
    """Counters/gauges/histograms minus the wall-clock series."""
    return {
        kind: {
            series: value
            for series, value in snapshot[kind].items()
            if not split_series_name(series)[0].endswith(".seconds")
        }
        for kind in ("counters", "gauges", "histograms")
    }


class TestSeriesNames:
    def test_unlabelled_name_is_identity(self):
        assert series_name("engine.jobs") == "engine.jobs"
        assert split_series_name("engine.jobs") == ("engine.jobs", {})

    def test_labels_are_sorted_and_round_trip(self):
        series = series_name("a.b", {"z": 1, "a": "x"})
        assert series == "a.b{a=x,z=1}"
        assert split_series_name(series) == ("a.b", {"a": "x", "z": "1"})


class TestHistogram:
    def test_bucket_bounds_are_powers_of_two(self):
        assert bucket_bound(0) == 0
        assert bucket_bound(1) == 1
        assert bucket_bound(3) == 4
        assert bucket_bound(1024) == 1024
        assert bucket_bound(1025) == 2048
        assert bucket_bound(float("inf")) == "inf"

    def test_merge_equals_direct_observation(self):
        """Observing in two registries and merging == observing in one."""
        left, right, direct = Histogram(), Histogram(), Histogram()
        for value, target in ((3, left), (900, right), (3, left), (0, right)):
            target.observe(value)
            direct.observe(value)
        merged = Histogram()
        merged.merge_dict(json.loads(json.dumps(left.to_dict())))
        merged.merge_dict(json.loads(json.dumps(right.to_dict())))
        assert merged.to_dict() == direct.to_dict()

    def test_json_bucket_keys_do_not_split_buckets(self):
        """A snapshot stringifies bucket keys; merging it back must land in
        the same bucket as local observations (8, not "8")."""
        histogram = Histogram()
        histogram.observe(7)
        histogram.merge_dict(json.loads(json.dumps(histogram.to_dict())))
        assert histogram.buckets == {8: 2}


class TestSnapshotMerge:
    def test_counters_add_and_gauges_overwrite(self):
        source, target = TelemetryRegistry(), TelemetryRegistry()
        for registry in (source, target):
            registry.enable()
            registry.inc("jobs", 3)
            registry.set_gauge("rungs", 7)
        target.merge(source.snapshot())
        assert target.counter("jobs").value == 6
        assert target.gauge("rungs").value == 7

    def test_snapshot_reset_yields_disjoint_deltas(self):
        registry = TelemetryRegistry()
        registry.enable()
        registry.inc("jobs")
        first = registry.snapshot(reset=True)
        registry.inc("jobs")
        second = registry.snapshot(reset=True)
        assert first == second
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_snapshot_is_picklable_and_jsonable(self):
        registry = TelemetryRegistry()
        registry.enable()
        registry.inc("jobs", labels={"class": "trap"})
        registry.observe("width", 5)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_disabled_registry_records_nothing(self):
        registry = TelemetryRegistry()
        registry.inc("jobs")
        registry.observe("width", 5)
        registry.set_gauge("rungs", 7)
        with registry.span("work"):
            pass
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_span_measures_even_while_disabled(self):
        registry = TelemetryRegistry()
        with registry.span("work") as span:
            pass
        assert span.seconds >= 0.0


class TestSchedulerTransparency:
    def test_serial_and_process_snapshots_are_equal(self):
        """The merged worker metrics of a process run equal the serial run's
        (timings excluded): shipping snapshots per batch loses nothing."""
        serial = _snapshot_of({})
        process = _snapshot_of({"n_workers": 2, "scheduler": "process"})
        assert _without_timings(serial) == _without_timings(process)
        # And the equality is not vacuous: the run produced real series.
        assert serial["counters"]["campaign.jobs_executed"] == 8
        assert any(
            series.startswith("checkpoint.") for series in serial["counters"]
        )

    def test_campaign_run_with_telemetry_off_records_nothing(self):
        snapshot = _snapshot_of({"telemetry": False})
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


class TestLockstepReconciliation:
    def test_resolutions_account_for_every_replica(self):
        snapshot = _snapshot_of(
            {"lockstep_width": 4}, workload="intbench"
        )
        counters = snapshot["counters"]
        resolutions = {}
        demotions = {}
        for series, value in counters.items():
            base, labels = split_series_name(series)
            if base == "lockstep.resolutions":
                resolutions[labels["kind"]] = value
            elif base == "lockstep.demotions":
                demotions[labels["reason"]] = value
        assert sum(resolutions.values()) == counters["lockstep.replicas"]
        assert resolutions.get("demoted", 0) + resolutions.get(
            "spliced", 0
        ) == sum(demotions.values())
        width = snapshot["histograms"]["lockstep.pack.width"]
        assert width["count"] == counters["lockstep.packs"]
        assert width["total"] == counters["lockstep.replicas"]


class TestStoreTransparency:
    def test_telemetry_is_not_part_of_the_key(self):
        """This is the exact key PR 2..6 stored rspeed/sample8/seed7
        campaigns under; telemetry on/off/traced must address the same
        record byte-identically."""
        program = build_program("rspeed")
        pinned = (
            "5acce84097c754ea00e3c4196e2da8a32df18b74f5e12fa660f98fb2d2d01e17"
        )
        on = CampaignEngine(
            program, CampaignConfig(sample_size=8, seed=7, telemetry=True)
        )
        off = CampaignEngine(
            program, CampaignConfig(sample_size=8, seed=7, telemetry=False)
        )
        traced = CampaignEngine(
            program,
            CampaignConfig(
                sample_size=8, seed=7, trace_path="trace.jsonl"
            ),
        )
        assert on.store_key() == pinned
        assert off.store_key() == pinned
        assert traced.store_key() == pinned

    def test_trace_path_requires_telemetry(self):
        with pytest.raises(ValueError, match="trace_path"):
            CampaignConfig(trace_path="t.jsonl", telemetry=False)


class TestRunManifest:
    def _config(self, store_path, **overrides):
        return CampaignConfig(
            unit_scope="arch.regfile",
            sample_size=3,
            fault_models=[FaultModel.STUCK_AT_1],
            seed=5,
            store_path=str(store_path),
            **overrides,
        )

    def test_manifest_round_trips_and_appends_per_run(self, tmp_path):
        program = build_program("intbench")
        store_path = tmp_path / "campaigns.sqlite"
        engine = CampaignEngine(
            program, self._config(store_path), backend_factory=IssBackend
        )
        engine.run()
        with CampaignStore(str(store_path)) as store:
            key = engine.store_key()
            manifest = store.get_manifest(key)
            assert manifest["manifest_version"] == 1
            assert manifest["wall_seconds"] > 0.0
            assert manifest["environment"]["python"]
            assert manifest["execution"]["n_workers"] == 1
            metrics = manifest["metrics"]
            assert metrics["counters"]["campaign.jobs_executed"] == 3
            assert metrics["counters"]["store.cache_misses"] == 3
        # A second run is a pure cache hit — and appends its own manifest.
        CampaignEngine(
            program, self._config(store_path), backend_factory=IssBackend
        ).run()
        with CampaignStore(str(store_path)) as store:
            manifests = store.list_manifests(key)
            assert len(manifests) == 2
            latest = store.get_manifest(key)
            assert latest["metrics"]["counters"]["store.cache_hits"] == 3
            assert latest == manifests[-1]
            assert store.get_manifest(key, 0) == manifests[0]

    def test_no_manifest_without_telemetry(self, tmp_path):
        program = build_program("intbench")
        store_path = tmp_path / "campaigns.sqlite"
        engine = CampaignEngine(
            program,
            self._config(store_path, telemetry=False),
            backend_factory=IssBackend,
        )
        engine.run()
        with CampaignStore(str(store_path)) as store:
            assert store.get_manifest(engine.store_key()) is None

    def test_manifest_for_unknown_campaign_is_refused(self, tmp_path):
        from repro.store import StoreError

        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            with pytest.raises(StoreError, match="no campaign"):
                store.put_manifest("0" * 64, {})


class TestTraceExport:
    def test_sidecars_merge_into_chrome_trace(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        registry = TelemetryRegistry()
        registry.enable()
        registry.events = EventLog(trace)
        with registry.span("engine.job", {"index": 1}):
            pass
        registry.events.emit_instant("checkpoint.splice")
        registry.events.close()
        assert len(sidecar_paths(trace)) == 1

        out = tmp_path / "chrome.json"
        count = export_chrome_trace(trace, str(out))
        assert count == 2
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        spans = [event for event in events if event["ph"] == "X"]
        (span,) = [e for e in spans if e["name"] == "engine.job"]
        assert span["cat"] == "engine"
        assert span["dur"] >= 0
        assert span["args"] == {"index": 1}

    def test_export_without_sidecars_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            export_chrome_trace(
                str(tmp_path / "missing.jsonl"), str(tmp_path / "out.json")
            )


class TestCli:
    def _run(self, *argv):
        return cli_main(list(argv))

    def _seed_campaign(self, store_path, trace=None):
        args = [
            "campaign", "run", "--workload", "intbench", "--sites", "2",
            "--seed", "7", "--store", store_path, "--quiet",
        ]
        if trace is not None:
            args += ["--trace", trace]
        assert self._run(*args) == 0

    def test_metrics_command_renders_manifest(self, tmp_path, capsys):
        store_path = str(tmp_path / "campaigns.sqlite")
        self._seed_campaign(store_path)
        capsys.readouterr()
        assert self._run("campaign", "metrics", "--store", store_path) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "campaign.jobs_executed: 6" in out
        assert "cache-hit ratio" in out

        assert self._run(
            "campaign", "metrics", "--store", store_path, "--json"
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["campaign.jobs_executed"] == 6

    def test_metrics_without_manifest_fails_cleanly(self, tmp_path, capsys):
        store_path = str(tmp_path / "campaigns.sqlite")
        args = (
            "campaign", "run", "--workload", "intbench", "--sites", "2",
            "--seed", "7", "--store", store_path, "--quiet", "--no-telemetry",
        )
        assert self._run(*args) == 0
        capsys.readouterr()
        assert self._run("campaign", "metrics", "--store", store_path) == 1
        assert "no manifest" in capsys.readouterr().err

    def test_trace_roundtrip_through_cli(self, tmp_path, capsys):
        store_path = str(tmp_path / "campaigns.sqlite")
        trace = str(tmp_path / "trace.jsonl")
        out = str(tmp_path / "chrome.json")
        self._seed_campaign(store_path, trace=trace)
        assert self._run("trace", "export", "--input", trace, "--chrome", out) == 0
        document = json.loads((tmp_path / "chrome.json").read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "campaign.run" in names

    def test_trace_export_without_sidecars_fails_cleanly(
        self, tmp_path, capsys
    ):
        missing = str(tmp_path / "nothing.jsonl")
        assert self._run(
            "trace", "export", "--input", missing, "--chrome",
            str(tmp_path / "out.json"),
        ) == 1
        assert "no trace sidecars" in capsys.readouterr().err

    def test_watch_exits_when_campaigns_complete(self, tmp_path, capsys):
        store_path = str(tmp_path / "campaigns.sqlite")
        self._seed_campaign(store_path)
        capsys.readouterr()
        assert self._run(
            "campaign", "status", "--watch", "--store", store_path
        ) == 0
        out = capsys.readouterr().out
        assert "done" in out
