"""The shared benchmark-harness tail: append-only histories and the CI gate.

``bench_utils`` is what every ``bench_*_throughput.py`` script delegates its
baseline handling to, so its behaviour is contract: flat pre-history
snapshots must keep loading (migrated to single-entry histories), recording
must append instead of overwrite, and ``--check`` must compare against the
*latest* record with the shared regression tolerance and optional floor.
"""

import json

from bench_utils import (
    REGRESSION_TOLERANCE,
    aggregate_speedup_of,
    append_record,
    latest_record,
    load_history,
    run_gated_benchmark,
    stamp,
)


def _record(speedup, **extra):
    return {
        "benchmark": "unit",
        "width": 4,
        **stamp(),
        "aggregate": {"speedup": speedup},
        **extra,
    }


class TestHistories:
    def test_flat_snapshot_migrates_on_load(self, tmp_path):
        """A pre-history baseline (top level *is* the record) loads as a
        single-entry history."""
        path = tmp_path / "BENCH_unit.json"
        flat = _record(2.5)
        path.write_text(json.dumps(flat))
        document = load_history(path)
        assert document["benchmark"] == "unit"
        assert document["history"] == [flat]
        assert latest_record(path) == flat

    def test_append_creates_then_extends(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        append_record(path, _record(2.0))
        document = append_record(path, _record(3.0))
        assert [r["aggregate"]["speedup"] for r in document["history"]] == [2.0, 3.0]
        on_disk = json.loads(path.read_text())
        assert on_disk == document
        assert latest_record(path)["aggregate"]["speedup"] == 3.0

    def test_append_migrates_a_flat_snapshot(self, tmp_path):
        """The first append after the format change rewrites a flat snapshot
        in history form without losing the old record."""
        path = tmp_path / "BENCH_unit.json"
        path.write_text(json.dumps(_record(2.0)))
        document = append_record(path, _record(3.0))
        assert [r["aggregate"]["speedup"] for r in document["history"]] == [2.0, 3.0]
        assert isinstance(json.loads(path.read_text())["history"], list)

    def test_aggregate_speedup_extractor(self):
        assert aggregate_speedup_of(_record(2.5)) == 2.5
        # The campaign bench carries a top-level speedup instead.
        assert aggregate_speedup_of({"speedup": 1.5}) == 1.5
        assert aggregate_speedup_of({"speedup": None}) is None
        assert aggregate_speedup_of({"aggregate": {"speedup": None}}) is None


class TestGate:
    def test_records_unless_no_write(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        assert run_gated_benchmark(path, _record(2.0), ("width",)) == 0
        assert run_gated_benchmark(
            path, _record(9.0), ("width",), no_write=True
        ) == 0
        assert [r["aggregate"]["speedup"] for r in load_history(path)["history"]] == [
            2.0
        ]

    def test_check_requires_a_baseline(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        assert run_gated_benchmark(
            path, _record(2.0), ("width",), check=True, no_write=True
        ) == 1

    def test_check_compares_against_the_latest_record(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        append_record(path, _record(10.0))
        append_record(path, _record(2.0))
        # 1.9x would regress against the first record but is within the
        # tolerance of the latest one.
        assert run_gated_benchmark(
            path, _record(1.9), ("width",), check=True, no_write=True
        ) == 0

    def test_check_fails_on_regression(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        append_record(path, _record(4.0))
        floor = 4.0 * (1.0 - REGRESSION_TOLERANCE)
        assert run_gated_benchmark(
            path, _record(floor - 0.1), ("width",), check=True, no_write=True
        ) == 1
        assert run_gated_benchmark(
            path, _record(floor + 0.1), ("width",), check=True, no_write=True
        ) == 0

    def test_check_enforces_the_hard_floor(self, tmp_path):
        """The lockstep gate: never below the floor, even when the committed
        baseline would tolerate it."""
        path = tmp_path / "BENCH_unit.json"
        append_record(path, _record(3.2))
        assert run_gated_benchmark(
            path, _record(2.9), ("width",), check=True, no_write=True,
            speedup_floor=3.0,
        ) == 1

    def test_check_fails_on_configuration_mismatch(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        append_record(path, _record(4.0))
        mismatched = _record(4.0)
        mismatched["width"] = 8
        assert run_gated_benchmark(
            path, mismatched, ("width",), check=True, no_write=True
        ) == 1

    def test_check_skips_ratio_on_null_speedup(self, tmp_path):
        """A baseline recorded on a single-CPU machine (null speedup) still
        verifies the configuration but cannot gate the ratio."""
        path = tmp_path / "BENCH_unit.json"
        append_record(path, _record(None))
        assert run_gated_benchmark(
            path, _record(5.0), ("width",), check=True, no_write=True
        ) == 0
