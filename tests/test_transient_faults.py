"""Tests for the transient (SEU-like) fault extension.

The paper restricts its study to permanent faults and leaves transients as
future work; the framework nevertheless supports them so that such campaigns
can be scripted.  These tests pin down the extension's semantics: a transient
is only active inside its cycle window, and its impact depends on *when* it
hits — precisely the property that makes transient campaigns so much more
expensive, as the paper argues.
"""

import pytest

from repro.isa.assembler import assemble
from repro.leon3.core import Leon3Core, run_program_rtl
from repro.rtl.faults import (
    ALL_FAULT_MODELS,
    FaultModel,
    PermanentFault,
    TransientFault,
)
from repro.rtl.netlist import Netlist

PROGRAM = """
        .text
        set     out, %l1
        mov     3, %o0
loop:
        add     %o0, 5, %o1
        st      %o1, [%l1]
        subcc   %o0, 1, %o0
        bg      loop
        nop
        ta      0
        .data
out:
        .space  8
"""


class TestTransientFaultModel:
    def test_active_only_inside_window(self):
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 0, "iu"), start_cycle=10, duration=5)
        assert not fault.active_at(9)
        assert fault.active_at(10)
        assert fault.active_at(14)
        assert not fault.active_at(15)

    def test_window_boundaries_are_half_open(self):
        """The contract at the edges: active at start_cycle and end_cycle-1,
        inactive at end_cycle (and everywhere outside)."""
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 0, "iu"), start_cycle=7, duration=3)
        assert fault.end_cycle == 10
        assert not fault.active_at(fault.start_cycle - 1)
        assert fault.active_at(fault.start_cycle)
        assert fault.active_at(fault.end_cycle - 1)
        assert not fault.active_at(fault.end_cycle)
        assert not fault.active_at(fault.end_cycle + 10**9)

    def test_single_cycle_window(self):
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 5, "iu"), start_cycle=42)
        assert fault.duration == 1
        assert fault.end_cycle == 43
        assert [cycle for cycle in range(40, 46) if fault.active_at(cycle)] == [42]

    def test_window_at_cycle_zero(self):
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 0, "iu"), start_cycle=0, duration=1)
        assert fault.active_at(0)
        assert not fault.active_at(1)

    def test_apply_flips_only_its_bit_whatever_the_previous_value(self):
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 7, "iu"), start_cycle=0)
        for value in (0, 0xFFFFFFFF, 0x1234_5678):
            for previous in (0, 0xFFFFFFFF):
                observed = fault.apply(value, previous)
                assert observed == value ^ (1 << 7)

    def test_reports_under_the_transient_bucket(self):
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 0, "iu"), start_cycle=0)
        assert fault.model is FaultModel.TRANSIENT
        assert fault.model.label == "Transient flip"
        assert FaultModel.TRANSIENT not in ALL_FAULT_MODELS

    def test_permanent_fault_cannot_use_the_transient_bucket(self):
        from repro.rtl.sites import FaultSite

        with pytest.raises(ValueError):
            PermanentFault(FaultSite("n", 0, "iu"), FaultModel.TRANSIENT)

    def test_apply_flips_the_bit(self):
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 3, "iu"), start_cycle=0)
        assert fault.apply(0, 0) == 8
        assert fault.apply(8, 0) == 0

    def test_validation(self):
        from repro.rtl.sites import FaultSite

        with pytest.raises(ValueError):
            TransientFault(FaultSite("n", 0, "iu"), start_cycle=-1)
        with pytest.raises(ValueError):
            TransientFault(FaultSite("n", 0, "iu"), start_cycle=0, duration=0)

    def test_permanent_faults_are_always_active(self):
        from repro.rtl.sites import FaultSite

        fault = PermanentFault(FaultSite("n", 0, "iu"), FaultModel.STUCK_AT_1)
        assert fault.active_at(0) and fault.active_at(10**9)

    def test_describe_mentions_window(self):
        from repro.rtl.sites import FaultSite

        fault = TransientFault(FaultSite("n", 1, "iu"), start_cycle=7, duration=2)
        assert "[7, 9)" in fault.describe()


class TestTransientOnNetlist:
    def test_netlist_honours_cycle_window(self):
        netlist = Netlist()
        netlist.declare("sig", 8, "iu")
        netlist.inject(TransientFault(netlist.site_for("sig", 0), start_cycle=5, duration=1))
        netlist.cycle = 0
        assert netlist.drive("sig", 0) == 0
        netlist.cycle = 5
        assert netlist.drive("sig", 0) == 1
        netlist.cycle = 6
        assert netlist.drive("sig", 0) == 0

    def test_reset_state_rewinds_cycle(self):
        netlist = Netlist()
        netlist.declare("sig", 8, "iu")
        netlist.cycle = 100
        netlist.reset_state()
        assert netlist.cycle == 0


class TestTransientOnBackends:
    def test_fast_core_transient_matches_reference_core(self):
        """A storage-cell transient runs natively on the fast engine and must
        stay bit-identical to the reference netlist walk."""
        from repro.leon3.fastcore import verify_rtl_bit_identity
        from repro.rtl.sites import FaultSite

        program = assemble(PROGRAM, name="transient")
        golden = run_program_rtl(program)
        fault = TransientFault(
            FaultSite("rf.cells", 2, "iu.regfile", index=17),
            start_cycle=golden.cycles // 3,
            duration=8,
        )
        verify_rtl_bit_identity(program, faults=[fault])

    def test_iss_transient_is_a_flip_at_the_instruction_index(self):
        """On the ISS a transient upsets its register cell once, when the
        executed-instruction count reaches start_cycle — identical to the
        equivalent architectural bit_flip."""
        from repro.engine.backend import IssBackend
        from repro.iss.faults import ArchitecturalFault
        from repro.rtl.sites import FaultSite

        program = assemble(PROGRAM, name="transient")
        backend = IssBackend()
        backend.prepare(program)
        golden = backend.run(max_instructions=10_000)
        # %o0 is the live loop counter: flipping bit 1 right before the first
        # `add %o0, 5, %o1` visibly corrupts the stored values.
        site = FaultSite("regfile", 1, "arch.regfile", index=8)
        transient = TransientFault(site, start_cycle=3, duration=1)
        explicit = ArchitecturalFault(
            register=8, bit=1, model="bit_flip", trigger_index=3
        )
        via_transient = backend.run(max_instructions=10_000, faults=[transient])
        via_flip = backend.run(max_instructions=10_000, faults=[explicit])
        assert via_transient.transactions == via_flip.transactions
        assert via_transient.trap_kind == via_flip.trap_kind
        assert via_transient.transactions != golden.transactions


class TestTransientOnCore:
    def test_transient_outside_execution_window_is_masked(self):
        program = assemble(PROGRAM, name="transient")
        golden = run_program_rtl(program)
        core = Leon3Core()
        core.load_program(program)
        fault = TransientFault(
            core.netlist.site_for("alu.adder.sum", 0),
            start_cycle=golden.cycles + 1000,
        )
        core.inject([fault])
        faulty = core.run(max_instructions=golden.instructions * 2 + 100)
        assert len(faulty.transactions) == len(golden.transactions)
        assert all(a.matches(b) for a, b in zip(golden.transactions, faulty.transactions))

    def test_transient_during_execution_can_corrupt_a_store(self):
        program = assemble(PROGRAM, name="transient")
        golden = run_program_rtl(program)
        # Sweep the whole execution with a long window to guarantee a hit on
        # the store data path, which every stored value flows through.
        core = Leon3Core()
        core.load_program(program)
        fault = TransientFault(
            core.netlist.site_for("iu.lsu.wdata", 0),
            start_cycle=0,
            duration=golden.cycles + 1,
        )
        core.inject([fault])
        faulty = core.run(max_instructions=golden.instructions * 2 + 100)
        mismatches = [
            (a.value, b.value)
            for a, b in zip(golden.transactions, faulty.transactions)
            if not a.matches(b)
        ]
        assert mismatches, "a window covering the whole run must corrupt at least one store"
