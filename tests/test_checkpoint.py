"""Bit-identity of the checkpointed transient runtime.

The contract (mirroring ``test_fastpath.py``/``test_fastcore.py``): for every
workload in the registry, on both backends, a transient fault executed
through fork-from-checkpoint — early-convergence exit included — yields a
:class:`~repro.engine.backend.RunResult` identical on every observable to
the naive from-reset execution of the same fault.  The golden recorded by
the ladder must equal a plain golden run, and the campaign layers (plans,
schedulers, store) must preserve all of it.
"""

import random

import pytest

from repro.engine.backend import IssBackend, Leon3RtlBackend, watchdog_budget
from repro.engine.campaign import CampaignConfig, CampaignEngine
from repro.engine.checkpoint import (
    ADAPTIVE_BASE_INTERVAL,
    MAX_RUNGS,
    assert_run_results_identical,
    make_checkpoint_runner,
)
from repro.engine.jobs import TransientJob, plan_transient_jobs
from repro.rtl.faults import FaultModel, TransientFault
from repro.rtl.sites import FaultSite
from repro.workloads import all_workloads, build_program

MAX_INSTRUCTIONS = 400_000

#: Workloads exercised by the exhaustive registry sweep.
REGISTRY = sorted(all_workloads())


def _backend(kind: str):
    backend = Leon3RtlBackend() if kind == "rtl" else IssBackend()
    return backend


def _horizon(backend, golden) -> int:
    return golden.cycles if backend.transient_unit == "cycles" else (
        golden.instructions
    )


def _check_workload(kind: str, name: str, sites: int = 4, windows: int = 2):
    """From-reset vs fork-from-checkpoint on every sampled fault of *name*."""
    program = build_program(name)
    backend = _backend(kind)
    backend.prepare(program)
    golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
    assert golden.normal_exit
    budget = watchdog_budget(golden.instructions)
    runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
    assert runner is not None
    # The ladder's golden is the plain golden run, bit for bit.
    assert_run_results_identical(golden, runner.golden())
    horizon = _horizon(backend, golden)
    site_list = backend.sites.sample(sites, seed=5, storage_only=True)
    rng = random.Random(name)
    for site in site_list:
        for _ in range(windows):
            fault = TransientFault(
                site, start_cycle=rng.randrange(horizon), duration=1
            )
            reference = backend.run(max_instructions=budget, faults=[fault])
            forked = runner.run_transient(fault, budget)
            assert_run_results_identical(reference, forked)
    assert runner.forks == len(site_list) * windows


@pytest.mark.parametrize("workload", REGISTRY)
def test_iss_fork_bit_identity_across_registry(workload):
    _check_workload("iss", workload)


@pytest.mark.parametrize("workload", REGISTRY)
def test_rtl_fork_bit_identity_across_registry(workload):
    _check_workload("rtl", workload)


class TestGoldenSplice:
    """The fault-free corner: a flip that cannot disturb anything must take
    the early exit and splice a result identical to the golden run."""

    @pytest.mark.parametrize("kind", ["iss", "rtl"])
    def test_dead_cell_flip_splices_golden(self, kind):
        program = build_program("rspeed")
        backend = _backend(kind)
        backend.prepare(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        budget = watchdog_budget(golden.instructions)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        # Cell 0 of either storage universe is %g0: reads short-circuit to 0
        # without touching the array, so the upset is invisible.
        net = "regfile" if kind == "iss" else "rf.cells"
        unit = "arch.regfile" if kind == "iss" else "iu.regfile"
        fault = TransientFault(
            FaultSite(net=net, bit=3, unit=unit, index=0),
            start_cycle=_horizon(backend, golden) // 2,
        )
        reference = backend.run(max_instructions=budget, faults=[fault])
        forked = runner.run_transient(fault, budget)
        assert_run_results_identical(reference, forked)
        assert_run_results_identical(golden, forked)
        assert runner.early_exits == 1

    @pytest.mark.parametrize("kind", ["iss", "rtl"])
    def test_early_exit_off_still_bit_identical(self, kind):
        program = build_program("membench")
        backend = _backend(kind)
        backend.prepare(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        budget = watchdog_budget(golden.instructions)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        horizon = _horizon(backend, golden)
        site = backend.sites.sample(1, seed=9, storage_only=True)[0]
        fault = TransientFault(site, start_cycle=horizon // 3, duration=1)
        reference = backend.run(max_instructions=budget, faults=[fault])
        forked = runner.run_transient(fault, budget, early_exit=False)
        assert_run_results_identical(reference, forked)
        assert runner.early_exits == 0


class TestLadder:
    def test_adaptive_ladder_thins_to_cap(self):
        program = build_program("rspeed", iterations=8)
        backend = IssBackend()
        backend.prepare(program)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        ladder = runner.ladder()
        golden = ladder.golden
        assert golden.instructions > ADAPTIVE_BASE_INTERVAL * MAX_RUNGS
        assert len(ladder.checkpoints) <= MAX_RUNGS + 1
        assert ladder.interval > ADAPTIVE_BASE_INTERVAL
        # Rungs sit on contiguous multiples of the final interval.
        for index, rung in enumerate(ladder.checkpoints):
            assert rung.instructions == index * ladder.interval

    def test_explicit_interval_is_honoured(self):
        program = build_program("intbench")
        backend = IssBackend()
        backend.prepare(program)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS, interval=100)
        ladder = runner.ladder()
        assert ladder.interval == 100
        assert [rung.instructions for rung in ladder.checkpoints[:3]] == [
            0, 100, 200,
        ]

    def test_reference_engines_do_not_checkpoint(self):
        assert not IssBackend(fast=False).supports_checkpoints
        assert not Leon3RtlBackend(fast=False).supports_checkpoints
        assert not IssBackend(detailed_trace=True).supports_checkpoints
        backend = IssBackend(fast=False)
        backend.prepare(build_program("intbench"))
        assert make_checkpoint_runner(backend, MAX_INSTRUCTIONS) is None

    def test_rtl_net_site_falls_back_to_from_reset(self):
        program = build_program("intbench")
        backend = Leon3RtlBackend()
        backend.prepare(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        budget = watchdog_budget(golden.instructions)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        site = backend.core.netlist.site_for("alu.adder.sum", 0)
        fault = TransientFault(site, start_cycle=golden.cycles // 2, duration=4)
        reference = backend.run(max_instructions=budget, faults=[fault])
        forked = runner.run_transient(fault, budget)
        assert_run_results_identical(reference, forked)
        assert runner.from_reset_runs == 1
        assert runner.forks == 0


class TestTransientPlanning:
    def test_plan_is_deterministic_and_sorted(self):
        sites = [FaultSite("rf.cells", b, "iu.regfile", index=4) for b in range(3)]
        jobs_a = plan_transient_jobs(sites, 5000, windows=4, duration=2,
                                     seed=7, workload="w")
        jobs_b = plan_transient_jobs(sites, 5000, windows=4, duration=2,
                                     seed=7, workload="w")
        assert jobs_a == jobs_b
        starts = [job.start_cycle for job in jobs_a]
        assert starts == sorted(starts)
        assert [job.index for job in jobs_a] == list(range(12))
        assert all(job.duration == 2 for job in jobs_a)
        assert all(0 <= job.start_cycle < 5000 for job in jobs_a)

    def test_different_seed_different_sample(self):
        sites = [FaultSite("rf.cells", 0, "iu.regfile", index=4)]
        jobs_a = plan_transient_jobs(sites, 50_000, 8, 1, seed=1, workload="w")
        jobs_b = plan_transient_jobs(sites, 50_000, 8, 1, seed=2, workload="w")
        assert [j.start_cycle for j in jobs_a] != [j.start_cycle for j in jobs_b]

    def test_transient_job_reporting_bucket(self):
        job = TransientJob(index=0, site=FaultSite("rf.cells", 0, "iu.regfile",
                                                   index=1),
                           start_cycle=10, duration=1, workload="w")
        assert job.fault_model is FaultModel.TRANSIENT
        assert job.fault == TransientFault(job.site, start_cycle=10, duration=1)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            plan_transient_jobs([], 0, 1, 1, seed=0, workload="w")

    def test_transient_config_selects_storage_sites_only(self):
        program = build_program("intbench")
        config = CampaignConfig(
            unit_scope="iu", sample_size=40, transient_windows=1
        )
        engine = CampaignEngine(program, config)
        sites = engine.select_sites()
        assert sites
        assert all(site.index is not None for site in sites)


class TestCampaignIntegration:
    def test_serial_equals_parallel_transient_campaign(self):
        program = build_program("intbench")
        base = {
            "unit_scope": "iu", "sample_size": 5, "seed": 3, "transient_windows": 2,
        }
        serial = CampaignEngine(program, CampaignConfig(**base)).run()
        parallel = CampaignEngine(
            program,
            CampaignConfig(**base, n_workers=2, scheduler="process"),
        ).run()
        left = serial[FaultModel.TRANSIENT]
        right = parallel[FaultModel.TRANSIENT]
        assert [o.failure_class for o in left.outcomes] == [
            o.failure_class for o in right.outcomes
        ]
        assert [o.fault for o in left.outcomes] == [
            o.fault for o in right.outcomes
        ]
        assert left.injections == 10

    def test_early_exit_off_equals_on(self):
        program = build_program("intbench")
        base = {
            "unit_scope": "iu", "sample_size": 5, "seed": 3, "transient_windows": 2,
        }
        fast = CampaignEngine(program, CampaignConfig(**base)).run()
        plain = CampaignEngine(
            program, CampaignConfig(**base, early_exit=False)
        ).run()
        assert [o.failure_class for o in fast[FaultModel.TRANSIENT].outcomes] == [
            o.failure_class for o in plain[FaultModel.TRANSIENT].outcomes
        ]

    def test_transient_campaign_on_reference_interpreter(self):
        """Backends without snapshot support run transients from reset and
        agree with the checkpointed fast path."""
        program = build_program("intbench")
        base = {
            "unit_scope": "arch.regfile",
            "sample_size": 4,
            "seed": 3,
            "transient_windows": 2,
        }
        fast = CampaignEngine(
            program, CampaignConfig(**base), backend_factory=IssBackend
        ).run()
        reference = CampaignEngine(
            program,
            CampaignConfig(**base, iss_fast=False),
            backend_factory=IssBackend,
        ).run()
        assert [
            o.failure_class for o in fast[FaultModel.TRANSIENT].outcomes
        ] == [o.failure_class for o in reference[FaultModel.TRANSIENT].outcomes]


class TestStoreIntegration:
    def test_transient_store_roundtrip_and_cache_hit(self, tmp_path):
        from repro.store import CampaignStore

        program = build_program("intbench")
        store_path = str(tmp_path / "campaigns.sqlite")
        config = CampaignConfig(
            unit_scope="iu", sample_size=4, seed=3, transient_windows=2,
            store_path=store_path,
        )
        first = CampaignEngine(program, config).run()[FaultModel.TRANSIENT]
        second = CampaignEngine(program, config).run()[FaultModel.TRANSIENT]
        assert [o.failure_class for o in first.outcomes] == [
            o.failure_class for o in second.outcomes
        ]
        assert [o.fault for o in first.outcomes] == [
            o.fault for o in second.outcomes
        ]
        with CampaignStore(store_path) as store:
            counters = store.counters()
            assert counters["campaign_hits"] == 1
            assert counters["jobs_executed"] == 8
            assert counters["jobs_cached"] == 8
            (info,) = store.list_campaigns()
            records = store.stored_records(info.key)
        assert all(isinstance(record.job, TransientJob) for record in records)
        assert [record.job for record in records] == [
            TransientJob(
                index=outcome_index,
                site=outcome.fault.site,
                start_cycle=outcome.fault.start_cycle,
                duration=outcome.fault.duration,
                workload="intbench",
            )
            for outcome_index, outcome in enumerate(first.outcomes)
        ]

    def test_permanent_key_is_byte_identical_to_pre_transient_era(self):
        """The transient key extension must not move permanent keys: this is
        the exact key PR 2..4 stored rspeed/sample8/seed7 campaigns under."""
        program = build_program("rspeed")
        engine = CampaignEngine(
            program, CampaignConfig(sample_size=8, seed=7)
        )
        assert engine.store_key() == (
            "5acce84097c754ea00e3c4196e2da8a32df18b74f5e12fa660f98fb2d2d01e17"
        )

    def test_transient_key_differs_from_permanent(self):
        program = build_program("intbench")
        permanent = CampaignEngine(
            program, CampaignConfig(unit_scope="iu", sample_size=4, seed=3)
        ).store_key()
        transient = CampaignEngine(
            program,
            CampaignConfig(
                unit_scope="iu", sample_size=4, seed=3, transient_windows=2
            ),
        ).store_key()
        assert permanent != transient

    def test_checkpoint_knobs_are_not_part_of_the_key(self):
        program = build_program("intbench")

        def key(**kwargs):
            return CampaignEngine(
                program,
                CampaignConfig(
                    unit_scope="iu", sample_size=4, seed=3,
                    transient_windows=2, **kwargs,
                ),
            ).store_key()

        assert key() == key(checkpoint_interval=64) == key(early_exit=False)
