"""Tests for the sparse memory model."""

import pytest

from repro.isa.assembler import assemble
from repro.iss.memory import Memory, MemoryError_


class TestByteAccess:
    def test_uninitialised_memory_reads_zero(self):
        memory = Memory()
        assert memory.read_byte(0x1234) == 0

    def test_byte_roundtrip(self):
        memory = Memory()
        memory.write_byte(0x40000000, 0xAB)
        assert memory.read_byte(0x40000000) == 0xAB

    def test_byte_values_masked(self):
        memory = Memory()
        memory.write_byte(0, 0x1FF)
        assert memory.read_byte(0) == 0xFF

    def test_bytes_block_roundtrip(self):
        memory = Memory()
        memory.write_bytes(0x100, b"hello")
        assert memory.read_bytes(0x100, 5) == b"hello"

    def test_sparse_pages_allocated_on_demand(self):
        memory = Memory()
        memory.write_byte(0x40000000, 1)
        memory.write_byte(0x80000000, 2)
        assert len(list(memory.allocated_pages())) == 2


class TestWordAccess:
    def test_word_big_endian_layout(self):
        memory = Memory()
        memory.write_word(0x200, 0x11223344)
        assert memory.read_bytes(0x200, 4) == b"\x11\x22\x33\x44"

    def test_word_roundtrip(self):
        memory = Memory()
        memory.write_word(0x204, 0xCAFEBABE)
        assert memory.read_word(0x204) == 0xCAFEBABE

    def test_misaligned_word_read_raises(self):
        with pytest.raises(MemoryError_):
            Memory().read_word(0x201)

    def test_misaligned_word_write_raises(self):
        with pytest.raises(MemoryError_):
            Memory().write_word(0x202, 0)

    def test_half_roundtrip_and_alignment(self):
        memory = Memory()
        memory.write_half(0x300, 0xBEEF)
        assert memory.read_half(0x300) == 0xBEEF
        with pytest.raises(MemoryError_):
            memory.read_half(0x301)

    def test_double_roundtrip(self):
        memory = Memory()
        memory.write_double(0x400, 0x11111111, 0x22222222)
        assert memory.read_double(0x400) == (0x11111111, 0x22222222)

    def test_double_alignment_enforced(self):
        with pytest.raises(MemoryError_):
            Memory().read_double(0x404)

    def test_sized_access_dispatch(self):
        memory = Memory()
        memory.write_sized(0x500, 0xAA, 1)
        memory.write_sized(0x502, 0xBBCC, 2)
        memory.write_sized(0x504, 0xDDEEFF00, 4)
        assert memory.read_sized(0x500, 1) == 0xAA
        assert memory.read_sized(0x502, 2) == 0xBBCC
        assert memory.read_sized(0x504, 4) == 0xDDEEFF00

    def test_unsupported_size_raises(self):
        with pytest.raises(MemoryError_):
            Memory().read_sized(0, 3)

    def test_word_wraps_to_32_bits(self):
        memory = Memory()
        memory.write_word(0, 0x1_FFFF_FFFF)
        assert memory.read_word(0) == 0xFFFFFFFF


class TestProgramLoading:
    def test_load_program_places_text_and_data(self):
        program = assemble(
            ".text\nstart:\n        nop\n.data\nvalues:\n        .word 0x11223344\n"
        )
        memory = Memory()
        memory.load_program(program)
        assert memory.read_word(program.text_base) == program.text[0]
        assert memory.read_word(program.data_base) == 0x11223344

    def test_clear_releases_pages(self):
        memory = Memory()
        memory.write_word(0x40000000, 5)
        memory.clear()
        assert memory.read_word(0x40000000) == 0
        assert not list(memory.allocated_pages())

    def test_copy_is_independent(self):
        memory = Memory()
        memory.write_word(0x40, 1)
        clone = memory.copy()
        clone.write_word(0x40, 2)
        assert memory.read_word(0x40) == 1
        assert clone.read_word(0x40) == 2
