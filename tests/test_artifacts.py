"""The golden-artifact cache: serialization round-trips, cache behaviour.

The acceptance property of the subsystem (``docs/store.md``): a campaign
whose golden run is *loaded* from the store's artifact cache is
bit-identical to the same campaign run with a freshly executed golden — on
every registry workload, on both backends, permanent and transient, sharded
and unsharded — and a warm store serves the golden with **zero** golden
executions, proven through the ``golden.cache.hit`` / ``golden.cache.miss``
telemetry counters rather than assumed.

Three layers of defence are exercised here:

* the typed JSON encoding round-trips every payload leaf exactly
  (bytes, tuples, int-keyed dicts),
* a loaded ladder is digest-verified rung by rung against the live engine
  before it is trusted (tampered recordings fall back to fresh execution),
* the artifact content address changes with everything that changes the
  recording's bytes (workload, backend identity, instruction ceiling, rung
  spacing) and with nothing else.
"""

import dataclasses
import json
import random
import zlib

import pytest

from conftest import SMALL_PROGRAM_SOURCE

from repro.engine import CampaignConfig, CampaignEngine
from repro.engine.backend import IssBackend, Leon3RtlBackend, watchdog_budget
from repro.engine.checkpoint import assert_run_results_identical
from repro.engine.sharding import run_sharded_campaign, shard_store_path
from repro.isa.assembler import assemble
from repro.obs.telemetry import TELEMETRY
from repro.rtl.faults import FaultModel, TransientFault
from repro.store import (
    KEY_VERSION,
    CampaignStore,
    artifact_key,
    campaign_key,
    memo_key,
    report_payload,
)
from repro.store.artifacts import (
    ARTIFACT_VERSION,
    ArtifactError,
    decode_value,
    encode_value,
    golden_to_payload,
    pack_artifact,
    payload_to_golden,
    payload_to_ladder,
    unpack_artifact,
)
from repro.store.cli import main as cli_main
from repro.workloads import all_workloads, build_program

MAX_INSTRUCTIONS = 400_000

REGISTRY = sorted(all_workloads())


@pytest.fixture(scope="module")
def small_program():
    return assemble(SMALL_PROGRAM_SOURCE, name="small")


def _backend(kind: str):
    return Leon3RtlBackend() if kind == "rtl" else IssBackend()


def _golden_counters():
    counters = TELEMETRY.snapshot().get("counters", {})
    return (
        counters.get("golden.cache.hit", 0),
        counters.get("golden.cache.miss", 0),
    )


def _assert_identical(expected, actual):
    assert expected.keys() == actual.keys()
    for model in expected:
        assert expected[model].outcomes == actual[model].outcomes
        assert (
            expected[model].failure_probability
            == actual[model].failure_probability
        )


# ---------------------------------------------------------------------------
# Typed JSON encoding
# ---------------------------------------------------------------------------


class TestEncoding:
    CASES = [
        None,
        True,
        0,
        -(1 << 40),
        1.5,
        "text",
        b"\x00\xffbytes",
        (1, 2, "three"),
        [1, [2, (3, b"x")]],
        {"plain": 1, "nested": {"deep": (b"\x01",)}},
        {0: b"page", 0x1_0000_0040: [1, 2]},
        {"icc": [0], 5: [1]},
        (),
        {},
    ]

    @pytest.mark.parametrize("value", CASES, ids=repr)
    def test_round_trip_is_exact(self, value):
        encoded = encode_value(value)
        json.loads(json.dumps(encoded))  # must be pure JSON
        decoded = decode_value(encoded)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_tuple_and_list_do_not_alias(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert decode_value(encode_value([1, 2])) == [1, 2]
        assert encode_value((1, 2)) != encode_value([1, 2])

    def test_unencodable_types_raise(self):
        with pytest.raises(ArtifactError):
            encode_value(object())
        with pytest.raises(ArtifactError):
            encode_value({1, 2})

    def test_unpack_rejects_garbage(self):
        with pytest.raises(ArtifactError):
            unpack_artifact(b"not zlib at all")
        with pytest.raises(ArtifactError):
            unpack_artifact(zlib.compress(b'"not a payload dict"'))
        with pytest.raises(ArtifactError):
            unpack_artifact(zlib.compress(b'{"no_version": 1}'))


# ---------------------------------------------------------------------------
# Ladder and golden round-trips (the bit-identity core)
# ---------------------------------------------------------------------------


def _round_trip_ladder(kind: str, name: str):
    """Record a ladder, serialize, restore into a *fresh* engine, and prove
    the restored runner is bit-identical on golden, rungs, and a fork."""
    program = build_program(name)
    backend = _backend(kind)
    backend.prepare(program)
    runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
    golden = runner.golden()

    payload = unpack_artifact(pack_artifact(runner.to_artifact()))

    restored_backend = _backend(kind)
    restored_backend.prepare(program)
    restored = restored_backend.checkpoint_runner(MAX_INSTRUCTIONS)
    assert not restored.recorded
    restored.from_artifact(payload)
    assert restored.recorded

    assert_run_results_identical(golden, restored.golden())
    original_rungs = runner.ladder().checkpoints
    restored_rungs = restored.ladder().checkpoints
    assert [
        (r.instructions, r.cycles, r.digest, r.txn_count)
        for r in original_rungs
    ] == [
        (r.instructions, r.cycles, r.digest, r.txn_count)
        for r in restored_rungs
    ]

    # The restored ladder must fork bit-identically to from-reset execution.
    budget = watchdog_budget(golden.instructions)
    horizon = (
        golden.cycles
        if restored_backend.transient_unit == "cycles"
        else golden.instructions
    )
    rng = random.Random(name)
    (site,) = restored_backend.sites.sample(1, seed=7, storage_only=True)
    fault = TransientFault(site, start_cycle=rng.randrange(horizon), duration=1)
    reference = backend.run(max_instructions=budget, faults=[fault])
    forked = restored.run_transient(fault, budget)
    assert_run_results_identical(reference, forked)


@pytest.mark.parametrize("workload", REGISTRY)
def test_iss_ladder_round_trip_across_registry(workload):
    _round_trip_ladder("iss", workload)


@pytest.mark.parametrize("workload", REGISTRY)
def test_rtl_ladder_round_trip_across_registry(workload):
    _round_trip_ladder("rtl", workload)


class TestGoldenRoundTrip:
    @pytest.mark.parametrize("kind", ["iss", "rtl"])
    def test_plain_golden_round_trips(self, kind, small_program):
        backend = _backend(kind)
        backend.prepare(small_program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        payload = unpack_artifact(pack_artifact(golden_to_payload(golden)))
        assert payload["artifact_version"] == ARTIFACT_VERSION
        assert_run_results_identical(golden, payload_to_golden(payload))

    def test_detailed_traces_are_not_cacheable(self, small_program):
        backend = IssBackend(True)  # detailed per-instruction trace
        backend.prepare(small_program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        with pytest.raises(ArtifactError):
            golden_to_payload(golden)

    def test_tampered_rung_digest_is_refused(self):
        program = build_program("intbench")
        backend = _backend("iss")
        backend.prepare(program)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        runner.golden()
        payload = unpack_artifact(pack_artifact(runner.to_artifact()))
        payload["checkpoints"][0]["digest"] = "0" * 64
        fresh = _backend("iss")
        fresh.prepare(program)
        restored = fresh.checkpoint_runner(MAX_INSTRUCTIONS)
        with pytest.raises(ArtifactError, match="digest"):
            restored.from_artifact(payload)


# ---------------------------------------------------------------------------
# Artifact content addresses
# ---------------------------------------------------------------------------


class TestArtifactKey:
    def _key(self, program, **overrides):
        params = {
            "kind": "golden",
            "backend_id": "rtl:repro.engine.backend.Leon3RtlBackend",
            "max_instructions": 400_000,
            "checkpoint_interval": None,
        }
        params.update(overrides)
        return artifact_key(program=program, **params)

    def test_key_version_stays_pinned(self):
        # The KEY_VERSION=1 regression gate: artifact keys share the pinned
        # derivation version of campaign/memo keys and must never force a
        # bump — adding the artifact namespace was purely additive.
        assert KEY_VERSION == 1

    def test_key_is_deterministic_and_ignores_name(self, small_program):
        renamed = dataclasses.replace(small_program, name="other")
        assert self._key(small_program) == self._key(small_program)
        assert self._key(small_program) == self._key(renamed)

    def test_key_changes_with_every_recording_input(self, small_program):
        base = self._key(small_program)
        assert self._key(small_program, kind="ladder") != base
        assert self._key(small_program, backend_id="iss:x.IssBackend") != base
        assert self._key(small_program, max_instructions=100) != base
        assert self._key(small_program, checkpoint_interval=64) != base
        changed = dataclasses.replace(
            small_program, text=list(small_program.text) + [0]
        )
        assert self._key(changed) != base

    def test_artifact_keys_are_their_own_namespace(self, small_program):
        # Same constituent inputs can never collide with a campaign or memo
        # key: the payload carries a "golden-artifact/<kind>" tag.
        artifact = self._key(small_program)
        campaign = campaign_key(
            program=small_program,
            sites=[],
            fault_models=[],
            seed=0,
            backend_id="rtl:repro.engine.backend.Leon3RtlBackend",
            unit_scope="iu",
            sample_size=None,
            max_instructions=400_000,
        )
        memo = memo_key("golden", {"program": small_program.name})
        assert len({artifact, campaign, memo}) == 3


# ---------------------------------------------------------------------------
# The campaign-level gate: cached golden == fresh golden, bit for bit
# ---------------------------------------------------------------------------


def _campaign(program, kind, store_path=None, transient=False, **overrides):
    params = {
        "unit_scope": "arch.regfile" if kind == "iss" else "iu",
        "sample_size": 3 if kind == "iss" else 2,
        "seed": 11,
        "store_path": store_path,
    }
    if transient:
        params["transient_windows"] = 2 if kind == "iss" else 1
    else:
        params["fault_models"] = [FaultModel.STUCK_AT_1]
    params.update(overrides)
    config = CampaignConfig(**params)
    factory = IssBackend if kind == "iss" else Leon3RtlBackend
    return CampaignEngine(program, config, backend_factory=factory)


class TestCampaignCache:
    @pytest.mark.parametrize("kind", ["iss", "rtl"])
    @pytest.mark.parametrize("transient", [False, True], ids=["perm", "seu"])
    def test_cached_golden_equals_fresh(
        self, kind, transient, small_program, tmp_path
    ):
        store_path = str(tmp_path / "c.sqlite")
        fresh = _campaign(small_program, kind, transient=transient).run()
        cold = _campaign(
            small_program, kind, store_path, transient=transient
        ).run()
        hits, misses = _golden_counters()
        assert (hits, misses) == (0, 1)
        warm = _campaign(
            small_program, kind, store_path, transient=transient, resume=False
        ).run()
        hits, misses = _golden_counters()
        assert misses == 0 and hits >= 1
        _assert_identical(fresh, cold)
        _assert_identical(fresh, warm)
        with CampaignStore(store_path) as store:
            (info,) = store.list_artifacts()
            expected_kind = "ladder" if transient else "golden"
            assert info.kind == expected_kind
            assert info.refs == 1
            assert info.hit_count >= 1

    def test_workers_load_from_the_cache(self, small_program, tmp_path):
        store_path = str(tmp_path / "c.sqlite")
        serial = _campaign(small_program, "iss", store_path, transient=True)
        serial_results = serial.run()
        pooled = _campaign(
            small_program, "iss", store_path, transient=True,
            resume=False, n_workers=2, scheduler="process",
        )
        pooled_results = pooled.run()
        hits, misses = _golden_counters()
        # Planner + every worker loaded the recording; nothing re-executed.
        assert misses == 0 and hits >= 2
        _assert_identical(serial_results, pooled_results)

    def test_lockstep_timeline_rides_the_artifact(
        self, small_program, tmp_path
    ):
        store_path = str(tmp_path / "c.sqlite")
        packed = _campaign(
            small_program, "iss", store_path, transient=True, lockstep_width=4
        )
        packed_results = packed.run()
        with CampaignStore(store_path) as store:
            (info,) = store.list_artifacts()
            payload = unpack_artifact(store.artifact_get(info.key))
        ladder, timeline = payload_to_ladder(payload)
        assert timeline is not None  # recorded eagerly before publication
        assert ladder.checkpoints
        warm = _campaign(
            small_program, "iss", store_path, transient=True,
            lockstep_width=4, resume=False,
        ).run()
        hits, misses = _golden_counters()
        assert misses == 0 and hits >= 1
        _assert_identical(packed_results, warm)

    def test_cache_disabled_never_touches_artifacts(
        self, small_program, tmp_path
    ):
        store_path = str(tmp_path / "c.sqlite")
        engine = _campaign(
            small_program, "iss", store_path, transient=True,
            artifact_cache=False,
        )
        engine.run()
        hits, misses = _golden_counters()
        assert (hits, misses) == (0, 0)
        with CampaignStore(store_path) as store:
            assert store.list_artifacts() == []

    def test_memory_store_skips_the_cache(self, small_program):
        with CampaignStore(":memory:") as store:
            engine = _campaign(small_program, "iss", transient=True)
            engine.run(store=store)
            hits, misses = _golden_counters()
            assert (hits, misses) == (0, 0)
            assert store.list_artifacts() == []

    def test_interval_change_misses_and_rerecords(
        self, small_program, tmp_path
    ):
        store_path = str(tmp_path / "c.sqlite")
        base = _campaign(small_program, "iss", store_path, transient=True)
        base_results = base.run()
        spaced = _campaign(
            small_program, "iss", store_path, transient=True,
            checkpoint_interval=64,
        )
        spaced.run()
        hits, misses = _golden_counters()
        assert (hits, misses) == (0, 1)  # different address: a fresh miss
        with CampaignStore(store_path) as store:
            assert len(store.list_artifacts()) == 2
        # Different rung spacing is result-transparent: same outcomes.
        rerun = _campaign(
            small_program, "iss", store_path, transient=True,
            checkpoint_interval=64, resume=False,
        ).run()
        _assert_identical(base_results, rerun)

    def test_corrupt_blob_falls_back_to_fresh_execution(
        self, small_program, tmp_path
    ):
        store_path = str(tmp_path / "c.sqlite")
        cold = _campaign(small_program, "iss", store_path, transient=True)
        cold_results = cold.run()
        with CampaignStore(store_path) as store:
            (info,) = store.list_artifacts()
            with store._conn:
                store._conn.execute(
                    "UPDATE artifacts SET payload = ? WHERE key = ?",
                    (b"corrupt", info.key),
                )
        warm = _campaign(
            small_program, "iss", store_path, transient=True, resume=False
        ).run()
        hits, misses = _golden_counters()
        assert (hits, misses) == (0, 1)  # unusable blob: counted as a miss
        _assert_identical(cold_results, warm)

    def test_tampered_payload_fails_verification_and_falls_back(
        self, small_program, tmp_path
    ):
        store_path = str(tmp_path / "c.sqlite")
        cold = _campaign(small_program, "iss", store_path, transient=True)
        cold_results = cold.run()
        with CampaignStore(store_path) as store:
            (info,) = store.list_artifacts()
            payload = unpack_artifact(store.artifact_get(info.key))
            payload["checkpoints"][-1]["digest"] = "f" * 64
            with store._conn:
                store._conn.execute(
                    "UPDATE artifacts SET payload = ? WHERE key = ?",
                    (pack_artifact(payload), info.key),
                )
        warm = _campaign(
            small_program, "iss", store_path, transient=True, resume=False
        ).run()
        hits, misses = _golden_counters()
        assert (hits, misses) == (0, 1)  # verification failed: treated a miss
        _assert_identical(cold_results, warm)


# ---------------------------------------------------------------------------
# Sharded campaigns share one golden recording
# ---------------------------------------------------------------------------


class TestShardedCache:
    def test_shards_share_one_recording_and_merge_bit_identically(
        self, small_program, tmp_path
    ):
        canonical = str(tmp_path / "c.sqlite")
        config = CampaignConfig(
            unit_scope="arch.regfile", sample_size=3, seed=11,
            transient_windows=2, store_path=canonical,
        )
        run_sharded_campaign(
            small_program, config, IssBackend, shards=3, store_path=canonical
        )
        # Shards 1 and 2 loaded the recording shard 0 published.
        for index in (1, 2):
            with CampaignStore(shard_store_path(canonical, 3, index)) as store:
                (info,) = store.list_artifacts()
                assert info.hit_count >= 1

        unsharded = str(tmp_path / "u.sqlite")
        CampaignEngine(
            small_program,
            dataclasses.replace(config, store_path=unsharded),
            backend_factory=IssBackend,
        ).run()
        with CampaignStore(canonical) as merged, CampaignStore(
            unsharded
        ) as reference:
            (merged_info,) = merged.list_campaigns()
            (reference_info,) = reference.list_campaigns()
            assert merged_info.key == reference_info.key
            merged_report = report_payload(merged, merged_info)
            reference_report = report_payload(reference, reference_info)
            # The merged artifact cache survives the fold, with its
            # reachability edge intact.
            (artifact,) = merged.list_artifacts()
            assert artifact.refs == 1
        assert json.dumps(merged_report, sort_keys=True) == json.dumps(
            reference_report, sort_keys=True
        )


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestArtifactCli:
    def _populate(self, small_program, store_path):
        _campaign(small_program, "iss", store_path, transient=True).run()

    def test_artifacts_ls(self, small_program, tmp_path, capsys):
        store_path = str(tmp_path / "c.sqlite")
        self._populate(small_program, store_path)
        assert cli_main(["store", "artifacts", "ls", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "ladder" in out and "small" in out

    def test_artifacts_gc_keeps_referenced_rows(
        self, small_program, tmp_path, capsys
    ):
        store_path = str(tmp_path / "c.sqlite")
        self._populate(small_program, store_path)
        assert cli_main(["store", "artifacts", "gc", "--store", store_path]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert (
            cli_main(
                ["store", "artifacts", "gc", "--all", "--store", store_path]
            )
            == 0
        )
        assert "removed 1" in capsys.readouterr().out
        with CampaignStore(store_path) as store:
            assert store.list_artifacts() == []

    def test_no_artifact_cache_flag(self, tmp_path, capsys):
        store_path = str(tmp_path / "c.sqlite")
        assert (
            cli_main(
                [
                    "campaign", "run", "--workload", "intbench",
                    "--backend", "iss", "--transient", "1", "--sites", "2",
                    "--no-artifact-cache", "--quiet",
                    "--store", store_path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        with CampaignStore(store_path) as store:
            assert store.list_artifacts() == []
