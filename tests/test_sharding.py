"""Property and regression tests for sharded campaign execution + merge.

The contract under test (see ``repro/engine/sharding.py`` and
``repro/store/merge.py``):

* the partition is disjoint, covering, contiguous, balanced and pure;
* ``merge(run_shard(0..N-1)) == unsharded`` — bit-identical outcome rows and
  a byte-identical aggregated report, on both backends, including the
  transient runtime and kill-and-resume of individual shards;
* merging is idempotent, partial shard sets stay ``running`` and name their
  missing shards, and a conflicting outcome row is a hard error naming both
  stores;
* ``shards``/``shard_index`` are result-transparent: the campaign key is
  byte-identical across shard coordinates (pinned against the exact key
  PR 2..7 stored rspeed/sample8/seed7 campaigns under).
"""

import dataclasses
import json
import shutil
import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import SMALL_PROGRAM_SOURCE

from repro.engine import (
    CampaignConfig,
    CampaignEngine,
    IssBackend,
    run_sharded_campaign,
    select_shard,
    shard_bounds,
    shard_slice,
    shard_store_path,
    shard_token,
)
from repro.isa.assembler import assemble
from repro.store import (
    CampaignSession,
    CampaignStore,
    MergeConflictError,
    MergeError,
    merge_stores,
    missing_shards,
    report_payload,
)
from repro.store.cli import main as cli_main
from repro.workloads import build_program


@pytest.fixture(scope="module")
def small_program():
    return assemble(SMALL_PROGRAM_SOURCE, name="small")


def _iss_config(**overrides):
    defaults = {"unit_scope": "arch.regfile", "sample_size": 2, "seed": 9}
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _only_info(store):
    (info,) = store.list_campaigns()
    return info


def _report_json(store_path):
    """The exact bytes ``repro campaign report --json`` prints for the
    store's single campaign."""
    with CampaignStore(store_path) as store:
        payload = report_payload(store, _only_info(store))
    return json.dumps(payload, indent=2, sort_keys=True)


def _outcomes(store_path):
    """(key, reconstructed outcomes) of the store's single campaign.

    Comparison happens on :class:`InjectionOutcome` (via ``to_outcome``)
    rather than raw records because ``seconds`` is wall clock and
    result-transparent.
    """
    with CampaignStore(store_path) as store:
        info = _only_info(store)
        records = store.stored_records(info.key)
    return info.key, [record.to_outcome() for record in records]


class Interrupted(Exception):
    """Stand-in for a mid-campaign crash/SIGINT raised from the progress hook."""


def _interrupt_after(n):
    def progress(done, total, outcome):
        if done >= n:
            raise Interrupted(f"killed after {done}/{total}")

    return progress


# ---------------------------------------------------------------------------
# The partition: pure-function properties over wide ranges
# ---------------------------------------------------------------------------


class TestPartitionProperties:
    @given(
        total=st.integers(min_value=0, max_value=10_000),
        shards=st.integers(min_value=1, max_value=64),
    )
    def test_bounds_are_disjoint_covering_contiguous_balanced(self, total, shards):
        bounds = shard_bounds(total, shards)
        assert len(bounds) == shards
        assert bounds[0][0] == 0
        assert bounds[-1][1] == total
        for (_, hi), (next_lo, _) in zip(bounds, bounds[1:]):
            assert hi == next_lo  # contiguous => disjoint and ascending
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1
        # The first total % shards slices take the extra job.
        assert sizes == sorted(sizes, reverse=True)

    @given(
        total=st.integers(min_value=0, max_value=500),
        shards=st.integers(min_value=1, max_value=12),
    )
    def test_select_shard_is_a_partition_of_the_plan(self, total, shards):
        jobs = list(range(total))
        recombined = []
        for shard_index in range(shards):
            piece = select_shard(jobs, shards, shard_index)
            assert piece == jobs[slice(*shard_slice(total, shards, shard_index))]
            recombined.extend(piece)
        assert recombined == jobs

    @given(jobs=st.lists(st.integers(), max_size=50))
    def test_single_shard_is_the_whole_plan(self, jobs):
        assert select_shard(jobs, 1, 0) == jobs

    def test_partition_validation(self):
        with pytest.raises(ValueError, match="shards"):
            shard_bounds(10, 0)
        with pytest.raises(ValueError, match="total"):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError, match="shard_index"):
            shard_slice(10, 3, 3)
        with pytest.raises(ValueError, match="shard_index"):
            shard_slice(10, 3, -1)

    def test_shards_beyond_total_come_out_empty(self):
        bounds = shard_bounds(3, 5)
        assert [hi - lo for lo, hi in bounds] == [1, 1, 1, 0, 0]


class TestShardTokens:
    KEY = "5acce84097c754ea00e3c4196e2da8a32df18b74f5e12fa660f98fb2d2d01e17"

    def test_token_is_deterministic_hex(self):
        token = shard_token(self.KEY, 3, 1)
        assert token == shard_token(self.KEY, 3, 1)
        assert len(token) == 64
        int(token, 16)

    @given(
        shards=st.integers(min_value=1, max_value=16),
        shard_index=st.integers(min_value=0, max_value=15),
        other_index=st.integers(min_value=0, max_value=15),
    )
    def test_token_distinguishes_coordinates(self, shards, shard_index, other_index):
        token = shard_token(self.KEY, shards, shard_index)
        assert token != shard_token(self.KEY, shards + 1, shard_index)
        assert token != shard_token(self.KEY[::-1], shards, shard_index)
        if other_index != shard_index:
            assert token != shard_token(self.KEY, shards, other_index)

    def test_shard_store_path_convention(self, tmp_path):
        path = shard_store_path(tmp_path / "campaigns.sqlite", 3, 0)
        assert path.endswith("campaigns.shard0of3.sqlite")
        with pytest.raises(ValueError, match="shard_index"):
            shard_store_path("campaigns.sqlite", 3, 3)


# ---------------------------------------------------------------------------
# Store transparency: the key must not depend on the split
# ---------------------------------------------------------------------------


class TestStoreTransparency:
    def test_shards_are_not_part_of_the_key(self):
        """This is the exact key PR 2..7 stored rspeed/sample8/seed7
        campaigns under; every shard of a sharded campaign must address the
        same record, or shard stores could never merge back."""
        program = build_program("rspeed")
        pinned = (
            "5acce84097c754ea00e3c4196e2da8a32df18b74f5e12fa660f98fb2d2d01e17"
        )
        unsharded = CampaignEngine(program, CampaignConfig(sample_size=8, seed=7))
        assert unsharded.store_key() == pinned
        for shards, shard_index in [(2, 0), (3, 1), (8, 7)]:
            sharded = CampaignEngine(
                program,
                CampaignConfig(
                    sample_size=8, seed=7, shards=shards, shard_index=shard_index
                ),
            )
            assert sharded.store_key() == pinned

    def test_config_validation(self):
        with pytest.raises(ValueError, match="shards"):
            CampaignConfig(shards=0)
        with pytest.raises(ValueError, match="shard_index"):
            CampaignConfig(shards=2, shard_index=2)
        with pytest.raises(ValueError, match="shard_index"):
            CampaignConfig(shard_index=1)


# ---------------------------------------------------------------------------
# End-to-end: merge(shards) == serial, bit for bit
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_env(tmp_path_factory, small_program):
    """One serial run and one 3-way sharded run of the same ISS campaign.

    Shared read-only by the tests below; anything that edits a store copies
    it first.
    """
    tmp = tmp_path_factory.mktemp("sharded")
    serial_path = str(tmp / "serial.sqlite")
    CampaignEngine(
        small_program,
        _iss_config(store_path=serial_path),
        backend_factory=IssBackend,
    ).run()
    merged_path = str(tmp / "campaigns.sqlite")
    report = run_sharded_campaign(
        small_program,
        _iss_config(),
        backend_factory=IssBackend,
        shards=3,
        store_path=merged_path,
    )
    return {
        "program": small_program,
        "serial": serial_path,
        "merged": merged_path,
        "shards": [shard_store_path(merged_path, 3, i) for i in range(3)],
        "report": report,
    }


class TestShardedExecution:
    def test_merged_equals_serial_bit_identical(self, sharded_env):
        serial_key, serial_outcomes = _outcomes(sharded_env["serial"])
        merged_key, merged_outcomes = _outcomes(sharded_env["merged"])
        assert merged_key == serial_key
        assert merged_outcomes == serial_outcomes
        assert _report_json(sharded_env["merged"]) == _report_json(
            sharded_env["serial"]
        )
        (campaign,) = sharded_env["report"].campaigns
        assert campaign.complete
        assert campaign.inserted == len(serial_outcomes)
        assert campaign.duplicates == 0
        assert campaign.missing_shards == {}

    def test_merged_golden_stats_match_serial(self, sharded_env):
        def golden(path):
            with CampaignStore(path) as store:
                return CampaignSession(
                    store=store, key=_only_info(store).key
                ).golden_stats()

        stats = golden(sharded_env["serial"])
        assert stats is not None
        assert golden(sharded_env["merged"]) == stats

    def test_shard_stores_stay_running_and_record_their_slice(self, sharded_env):
        total = len(_outcomes(sharded_env["serial"])[1])
        bounds = shard_bounds(total, 3)
        for shard_index, path in enumerate(sharded_env["shards"]):
            with CampaignStore(path) as store:
                info = _only_info(store)
                assert info.status == "running"  # awaiting merge
                assert info.total_jobs == total  # parent plan, not the slice
                lo, hi = bounds[shard_index]
                assert info.done_jobs == hi - lo
                (row,) = store.shard_rows(info.key)
            assert (row.shard_count, row.shard_index) == (3, shard_index)
            assert (row.job_lo, row.job_hi) == (lo, hi)  # half-open slice
            assert row.token == shard_token(info.key, 3, shard_index)

    def test_shard_outcomes_carry_original_job_indices(self, sharded_env):
        total = len(_outcomes(sharded_env["serial"])[1])
        for shard_index, path in enumerate(sharded_env["shards"]):
            with CampaignStore(path) as store:
                info = _only_info(store)
                indices = [
                    record.job.index for record in store.stored_records(info.key)
                ]
            lo, hi = shard_slice(total, 3, shard_index)
            assert indices == list(range(lo, hi))

    def test_remerge_is_idempotent(self, sharded_env):
        before = _report_json(sharded_env["merged"])
        report = merge_stores(sharded_env["merged"], sharded_env["shards"])
        assert report.inserted == 0
        assert report.duplicates == len(_outcomes(sharded_env["serial"])[1])
        assert _report_json(sharded_env["merged"]) == before

    def test_partial_merge_stays_running_then_completes(self, sharded_env, tmp_path):
        dest = str(tmp_path / "partial.sqlite")
        partial = merge_stores(dest, sharded_env["shards"][:2])
        (campaign,) = partial.campaigns
        assert not campaign.complete
        assert campaign.missing_shards == {3: (2,)}
        with CampaignStore(dest) as store:
            info = _only_info(store)
            assert info.status == "running"
            assert missing_shards(store, info.key) == {3: (2,)}
        final = merge_stores(dest, sharded_env["shards"][2:])
        (campaign,) = final.campaigns
        assert campaign.complete
        assert campaign.missing_shards == {}
        assert _report_json(dest) == _report_json(sharded_env["serial"])

    def test_killed_and_resumed_shard_merges_bit_identically(
        self, sharded_env, tmp_path
    ):
        """Kill shard 1 mid-chunk, resume it, merge: still == serial."""
        program = sharded_env["program"]
        paths = []
        for shard_index in range(3):
            path = str(tmp_path / f"shard{shard_index}.sqlite")
            paths.append(path)
            config = _iss_config(
                store_path=path, shards=3, shard_index=shard_index, chunk_size=2
            )
            engine = CampaignEngine(program, config, backend_factory=IssBackend)
            if shard_index == 1:
                with pytest.raises(Interrupted):
                    engine.run(progress=_interrupt_after(1))
                with CampaignStore(path) as store:
                    info = _only_info(store)
                    # The shard is independently resumable: its store already
                    # carries the shard row and a committed prefix.
                    assert store.shard_rows(info.key) != []
                engine = CampaignEngine(
                    program, config, backend_factory=IssBackend
                )
            engine.run()
        dest = str(tmp_path / "merged.sqlite")
        merge_stores(dest, paths)
        assert _outcomes(dest) == _outcomes(sharded_env["serial"])
        assert _report_json(dest) == _report_json(sharded_env["serial"])

    def test_rtl_backend_shards_merge_bit_identically(self, small_program, tmp_path):
        from repro.rtl.faults import FaultModel

        kwargs = {
            "unit_scope": "iu",
            "sample_size": 2,
            "fault_models": [FaultModel.STUCK_AT_1, FaultModel.STUCK_AT_0],
            "seed": 11,
        }
        serial_path = str(tmp_path / "serial.sqlite")
        CampaignEngine(
            small_program, CampaignConfig(store_path=serial_path, **kwargs)
        ).run()
        merged_path = str(tmp_path / "merged.sqlite")
        report = run_sharded_campaign(
            small_program,
            CampaignConfig(**kwargs),
            shards=2,
            store_path=merged_path,
        )
        assert report.campaigns[0].complete
        assert _outcomes(merged_path) == _outcomes(serial_path)
        assert _report_json(merged_path) == _report_json(serial_path)

    def test_transient_campaign_shards_merge_bit_identically(
        self, small_program, tmp_path
    ):
        kwargs = {
            "unit_scope": "arch.regfile",
            "sample_size": 2,
            "seed": 5,
            "transient_windows": 2,
        }
        serial_path = str(tmp_path / "serial.sqlite")
        CampaignEngine(
            small_program,
            CampaignConfig(store_path=serial_path, **kwargs),
            backend_factory=IssBackend,
        ).run()
        merged_path = str(tmp_path / "merged.sqlite")
        report = run_sharded_campaign(
            small_program,
            CampaignConfig(**kwargs),
            backend_factory=IssBackend,
            shards=2,
            store_path=merged_path,
        )
        assert report.campaigns[0].complete
        assert _outcomes(merged_path) == _outcomes(serial_path)
        assert _report_json(merged_path) == _report_json(serial_path)


class TestShardedExecutionProperties:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shards=st.integers(min_value=1, max_value=5),
        sample_size=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_sharded_equals_serial_over_plans(
        self, tmp_path_factory, small_program, shards, sample_size, seed
    ):
        tmp = tmp_path_factory.mktemp("shard-prop")
        config = _iss_config(sample_size=sample_size, seed=seed)
        serial_path = str(tmp / "serial.sqlite")
        CampaignEngine(
            small_program,
            dataclasses.replace(config, store_path=serial_path),
            backend_factory=IssBackend,
        ).run()
        merged_path = str(tmp / "merged.sqlite")
        report = run_sharded_campaign(
            small_program,
            config,
            backend_factory=IssBackend,
            shards=shards,
            store_path=merged_path,
        )
        assert report.campaigns[0].complete
        assert _outcomes(merged_path) == _outcomes(serial_path)
        assert _report_json(merged_path) == _report_json(serial_path)

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shards=st.integers(min_value=2, max_value=4),
        killed_shard=st.integers(min_value=0, max_value=3),
        interrupt_point=st.integers(min_value=1, max_value=2),
    )
    def test_kill_and_resume_any_shard_over_interrupt_points(
        self,
        tmp_path_factory,
        sharded_env,
        shards,
        killed_shard,
        interrupt_point,
    ):
        killed_shard %= shards
        tmp = tmp_path_factory.mktemp("shard-kill")
        program = sharded_env["program"]
        paths = []
        for shard_index in range(shards):
            path = str(tmp / f"shard{shard_index}.sqlite")
            paths.append(path)
            config = _iss_config(
                store_path=path,
                shards=shards,
                shard_index=shard_index,
                chunk_size=2,
            )
            engine = CampaignEngine(program, config, backend_factory=IssBackend)
            if shard_index == killed_shard:
                try:
                    # May finish uninterrupted when the slice is shorter than
                    # the interrupt point; resume is then a pure cache hit.
                    engine.run(progress=_interrupt_after(interrupt_point))
                except Interrupted:
                    pass
                engine = CampaignEngine(
                    program, config, backend_factory=IssBackend
                )
            engine.run()
        dest = str(tmp / "merged.sqlite")
        report = merge_stores(dest, paths)
        assert report.campaigns[0].complete
        assert _outcomes(dest) == _outcomes(sharded_env["serial"])
        assert _report_json(dest) == _report_json(sharded_env["serial"])


# ---------------------------------------------------------------------------
# Conflict policy: disagreement between stores is a hard error
# ---------------------------------------------------------------------------


class TestMergeConflicts:
    def _tampered_shard(self, sharded_env, tmp_path):
        """A copy of shard 2's store with one outcome row flipped to a
        different (valid) failure class."""
        tampered = str(tmp_path / "tampered.sqlite")
        shutil.copyfile(sharded_env["shards"][2], tampered)
        conn = sqlite3.connect(tampered)
        job_index, failure_class = conn.execute(
            "SELECT job_index, failure_class FROM outcomes "
            "ORDER BY job_index LIMIT 1"
        ).fetchone()
        flipped = "wrong_data" if failure_class != "wrong_data" else "no_effect"
        conn.execute(
            "UPDATE outcomes SET failure_class = ? WHERE job_index = ?",
            (flipped, job_index),
        )
        conn.commit()
        conn.close()
        return tampered, job_index

    def test_conflicting_outcome_names_both_stores(self, sharded_env, tmp_path):
        tampered, job_index = self._tampered_shard(sharded_env, tmp_path)
        dest = str(tmp_path / "merged.sqlite")
        merge_stores(dest, sharded_env["shards"])
        with pytest.raises(MergeConflictError) as excinfo:
            merge_stores(dest, [tampered])
        error = excinfo.value
        key = _outcomes(sharded_env["serial"])[0]
        assert error.campaign_key == key
        assert error.job_index == job_index
        assert error.source_path == tampered
        message = str(error)
        assert key in message
        assert f"job {job_index}" in message
        assert tampered in message
        assert dest in message
        # Nothing was silently committed: the merged store still matches.
        assert _report_json(dest) == _report_json(sharded_env["serial"])

    def test_cli_merge_conflict_is_operational_exit_1(
        self, sharded_env, tmp_path, capsys
    ):
        tampered, _ = self._tampered_shard(sharded_env, tmp_path)
        dest = str(tmp_path / "merged.sqlite")
        assert cli_main(["store", "merge", dest, sharded_env["shards"][2]]) == 0
        capsys.readouterr()
        assert cli_main(["store", "merge", dest, tampered]) == 1
        err = capsys.readouterr().err
        assert "outcome conflict" in err
        assert "refusing to merge" in err

    def test_foreign_token_is_rejected(self, sharded_env, tmp_path):
        tampered = str(tmp_path / "foreign.sqlite")
        shutil.copyfile(sharded_env["shards"][0], tampered)
        conn = sqlite3.connect(tampered)
        conn.execute("UPDATE shards SET token = ?", ("ab" * 32,))
        conn.commit()
        conn.close()
        dest = str(tmp_path / "merged.sqlite")
        with pytest.raises(MergeError, match="token"):
            merge_stores(dest, [tampered])

    def test_merge_into_itself_is_refused(self, sharded_env):
        with pytest.raises(MergeError, match="itself"):
            merge_stores(sharded_env["shards"][0], [sharded_env["shards"][0]])

    def test_missing_source_is_refused(self, tmp_path):
        with pytest.raises(MergeError, match="no store database"):
            merge_stores(
                str(tmp_path / "dest.sqlite"), [str(tmp_path / "nope.sqlite")]
            )

    def test_merge_needs_sources(self, tmp_path):
        with pytest.raises(MergeError, match="at least one source"):
            merge_stores(str(tmp_path / "dest.sqlite"), [])


# ---------------------------------------------------------------------------
# CLI workflow: N processes, one merge, byte-identical report
# ---------------------------------------------------------------------------


class TestCliSharding:
    ARGS = (
        "--workload", "intbench", "--backend", "iss", "--sites", "2",
        "--seed", "7", "--quiet",
    )

    def test_three_shard_cli_workflow(self, tmp_path, capsys):
        serial = str(tmp_path / "serial.sqlite")
        assert cli_main(
            ["campaign", "run", *self.ARGS, "--store", serial]
        ) == 0
        capsys.readouterr()

        shard_paths = []
        for shard_index in range(3):
            path = str(tmp_path / f"shard{shard_index}.sqlite")
            shard_paths.append(path)
            assert cli_main(
                [
                    "campaign", "run", *self.ARGS,
                    "--shards", "3", "--shard-index", str(shard_index),
                    "--store", path,
                ]
            ) == 0
            out = capsys.readouterr().out
            assert f"shard {shard_index} of 3" in out
            assert "repro store merge" in out

        # A shard store's status names which siblings are missing.
        assert cli_main(["campaign", "status", "--store", shard_paths[1]]) == 0
        out = capsys.readouterr().out
        assert "running" in out
        assert "holds 1 of 3" in out
        assert "missing 0,2" in out

        merged = str(tmp_path / "merged.sqlite")
        assert cli_main(["store", "merge", merged, *shard_paths]) == 0
        out = capsys.readouterr().out
        assert "6 outcomes inserted" in out
        assert "complete" in out

        assert cli_main(["campaign", "status", "--store", merged]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "holds all 3 shards" in out

        # The bit-identity gate, byte for byte on the user-facing payload.
        assert cli_main(
            ["campaign", "report", "--json", "--store", merged]
        ) == 0
        merged_report = capsys.readouterr().out
        assert cli_main(
            ["campaign", "report", "--json", "--store", serial]
        ) == 0
        assert merged_report == capsys.readouterr().out

        # The merged store carries a folded run manifest.
        assert cli_main(["campaign", "metrics", "--store", merged]) == 0
        out = capsys.readouterr().out
        assert "merged_runs=3" in out

    def test_cli_resume_of_a_shard_store_stays_in_its_slice(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "shard0.sqlite")
        assert cli_main(
            [
                "campaign", "run", *self.ARGS,
                "--shards", "3", "--shard-index", "0", "--store", path,
            ]
        ) == 0
        capsys.readouterr()
        with CampaignStore(path) as store:
            info = _only_info(store)
            done_before = info.done_jobs
        assert cli_main(
            ["campaign", "resume", "--key", info.key[:10], "--store", path,
             "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        # The resume recognises the single shard row and does not execute the
        # other shards' jobs into this store.
        assert "executed 0 injections" in out
        assert f"served {done_before} from the store" in out
        with CampaignStore(path) as store:
            assert _only_info(store).done_jobs == done_before

    def test_gc_keeps_shard_stores(self, tmp_path, capsys):
        path = str(tmp_path / "shard0.sqlite")
        assert cli_main(
            [
                "campaign", "run", *self.ARGS,
                "--shards", "3", "--shard-index", "0", "--store", path,
            ]
        ) == 0
        capsys.readouterr()
        # The shard campaign is incomplete by design; gc must keep it.
        assert cli_main(["store", "gc", "--store", path]) == 0
        assert "removed 0" in capsys.readouterr().out
        with CampaignStore(path) as store:
            assert len(store.list_campaigns()) == 1
