"""Fast-path ISS interpreter: bit-identity contract, decode cache, dispatch.

The fast interpreter's whole value proposition is that it is *not* a second
implementation of SPARC semantics from the campaign's point of view: every
observable must match the reference interpreter bit for bit.  These tests
enforce that contract across the full workload registry, fault-free and under
injected architectural faults, plus the decode-cache invalidation rule and
the delayed control-transfer corner cases that live in the hot loop.
"""

import pytest

from conftest import SMALL_PROGRAM_SOURCE

import repro.iss.fastpath as fastpath
from repro.engine import CampaignConfig, CampaignEngine, IssBackend
from repro.engine.backend import ARCH_REGFILE_UNIT
from repro.faultinjection.campaign import run_iss_campaign
from repro.isa import encoding
from repro.isa.assembler import assemble
from repro.isa.encoding import OP_ARITH
from repro.iss.emulator import Emulator
from repro.iss.fastpath import FastEmulator, verify_bit_identity
from repro.iss.faults import ArchitecturalFault
from repro.iss.memory import Memory
from repro.rtl.faults import FaultModel
from repro.store.keys import backend_identity
from repro.workloads.registry import all_workloads, build_program

EMULATOR_CLASSES = [Emulator, FastEmulator]


def run_on(emulator_cls, source: str, max_instructions: int = 10_000):
    program = assemble(source, name="test")
    emulator = emulator_cls(memory=Memory())
    emulator.load_program(program)
    return emulator.run(max_instructions=max_instructions), emulator


# ---------------------------------------------------------------------------
# Bit-identity: the contract
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(all_workloads()))
    def test_every_registered_workload_fault_free(self, name):
        program = all_workloads()[name].build()
        reference, fast = verify_bit_identity(program, max_instructions=400_000)
        assert reference.normal_exit

    @pytest.mark.parametrize(
        "fault",
        [
            ArchitecturalFault(register=9, bit=3, model="stuck_at_1"),
            ArchitecturalFault(register=10, bit=0, model="stuck_at_0"),
            ArchitecturalFault(register=14, bit=2, model="stuck_at_1"),
            ArchitecturalFault(register=8, bit=7, model="bit_flip", trigger_index=100),
            ArchitecturalFault(register=22, bit=31, model="bit_flip", trigger_index=7),
        ],
        ids=lambda fault: f"{fault.model}-r{fault.register}b{fault.bit}",
    )
    @pytest.mark.parametrize("name", ["rspeed", "membench", "tblook"])
    def test_under_injected_faults(self, name, fault):
        program = all_workloads()[name].build()
        verify_bit_identity(program, max_instructions=400_000, fault=fault)

    def test_watchdog_truncated_runs(self):
        # Budget exhaustion mid-loop must leave identical partial state.
        program = build_program("rspeed")
        for budget in (1, 37, 500):
            reference, fast = verify_bit_identity(program, max_instructions=budget)
            assert reference.trap is not None and reference.trap.kind == "watchdog"

    def test_run_fast_program_matches_run_program(self):
        from repro.iss.emulator import run_program
        from repro.iss.fastpath import run_fast_program

        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        reference = run_program(program)
        fast = run_fast_program(program)
        assert fast.transactions == reference.transactions
        assert fast.trace == reference.trace
        assert fast.exit_code == reference.exit_code

    def test_detailed_trace_runs_identically(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        reference, fast = verify_bit_identity(program, detailed_trace=True)
        assert fast.trace.records  # detailed records were produced and compared


# ---------------------------------------------------------------------------
# Decode cache
# ---------------------------------------------------------------------------


class TestDecodeCache:
    def test_loops_decode_each_pc_once(self):
        result, emulator = run_on(FastEmulator, SMALL_PROGRAM_SOURCE)
        assert result.normal_exit
        # The 10-iteration loop re-executes its body from the cache: far
        # fewer decode fills than executed instructions, exactly one fill
        # per cached PC.
        assert emulator.decode_fills < result.instructions
        assert emulator.decode_fills == len(emulator._decode_cache)

    def test_store_to_code_page_invalidates_cached_decode(self):
        # Overwrite an already-executed (hence cached) instruction with
        # "mov 7, %o0" and loop back over it: the fast interpreter must
        # re-decode and execute the patched word, like the reference does.
        patch_word = encoding.Format3Imm(
            op=OP_ARITH, op3=0x02, rd=8, rs1=0, simm13=7
        ).encode()  # or %g0, 7, %o0
        source = f"""
        .text
        set     patch, %o3
        set     {patch_word:#010x}, %o4
        set     out, %l1
        mov     0, %o5
loop:
patch:
        mov     1, %o0
        st      %o0, [%l1]
        cmp     %o5, 0
        bne     done
        nop
        inc     %o5
        st      %o4, [%o3]
        ba      loop
        nop
done:
        ta      0
        .data
out:
        .space  8
"""
        program = assemble(source, name="selfmod")
        reference, fast = verify_bit_identity(program)
        out_values = [
            t.value for t in fast.transactions if t.value in (1, 7)
        ]
        assert out_values == [1, 7]  # pass 1 pre-patch, pass 2 patched

    def test_load_program_flushes_decode_cache(self):
        first = assemble(SMALL_PROGRAM_SOURCE, name="small")
        emulator = FastEmulator(memory=Memory())
        emulator.load_program(first)
        emulator.run()
        assert emulator._decode_cache
        emulator.load_program(assemble("        .text\n        ta 0\n", name="tiny"))
        assert not emulator._decode_cache
        assert not emulator._code_pages


# ---------------------------------------------------------------------------
# SimulationError containment (hot-path bugfix)
# ---------------------------------------------------------------------------


class TestSimulationErrorTrap:
    SOURCE = """
        .text
        mov     3, %o0
        mov     5, %o1
        xnor    %o0, %o1, %o2
        ta      0
"""

    def test_reference_interpreter_traps_instead_of_raising(self, monkeypatch):
        original = Emulator._execute_alu

        def poisoned(self, instruction):
            if instruction.defn.mnemonic == "xnor":
                from repro.iss.emulator import SimulationError

                raise SimulationError("no ALU semantics for xnor")
            return original(self, instruction)

        monkeypatch.setattr(Emulator, "_execute_alu", poisoned)
        result, _ = run_on(Emulator, self.SOURCE)
        assert result.halted
        assert result.trap is not None
        assert result.trap.kind == "simulation_error"

    def test_fast_interpreter_traps_instead_of_raising(self, monkeypatch):
        monkeypatch.setitem(
            fastpath._HANDLER_TABLE, "xnor", fastpath._h_unimplemented
        )
        result, _ = run_on(FastEmulator, self.SOURCE)
        assert result.halted
        assert result.trap is not None
        assert result.trap.kind == "simulation_error"
        assert "xnor" in result.trap.detail


# ---------------------------------------------------------------------------
# Delayed control-transfer corner cases, asserted on both interpreters
# ---------------------------------------------------------------------------


def _cti_program(body: str) -> str:
    return f"""
        .text
        set     out, %l1
        mov     0, %o0
{body}
        st      %o0, [%l1]
        ta      0
        .data
out:
        .space  8
"""


@pytest.mark.parametrize("emulator_cls", EMULATOR_CLASSES, ids=["reference", "fast"])
class TestDelayedControlTransfer:
    def test_taken_ba_annul_skips_delay_slot(self, emulator_cls):
        result, _ = run_on(emulator_cls, _cti_program("""
        ba,a    target
        mov     1, %o0                 ! annulled
target:
"""))
        assert result.normal_exit
        assert result.transactions[-1].value == 0

    def test_bn_executes_delay_slot(self, emulator_cls):
        result, _ = run_on(emulator_cls, _cti_program("""
        bn      target
        mov     1, %o0                 ! delay slot of an untaken branch
target:
"""))
        assert result.normal_exit
        assert result.transactions[-1].value == 1

    def test_bn_annul_skips_delay_slot_unconditionally(self, emulator_cls):
        result, _ = run_on(emulator_cls, _cti_program("""
        bn,a    target
        mov     1, %o0                 ! annulled: bn,a always annuls
target:
"""))
        assert result.normal_exit
        assert result.transactions[-1].value == 0

    def test_untaken_conditional_annul_skips_delay_slot(self, emulator_cls):
        result, _ = run_on(emulator_cls, _cti_program("""
        cmp     %o0, 0                 ! %o0 == 0 -> Z set
        bne,a   target
        mov     1, %o0                 ! annulled because bne is not taken
target:
"""))
        assert result.normal_exit
        assert result.transactions[-1].value == 0

    def test_branch_in_delay_slot_couples(self, emulator_cls):
        # A taken branch whose delay slot is itself a taken branch: the
        # first target's instruction executes once, then control reaches the
        # second target (the emulators' sequential pc/npc model).
        result, _ = run_on(emulator_cls, _cti_program("""
        ba      first
        ba      second
        nop
first:
        mov     1, %o0                 ! executes between the two transfers
second:
"""))
        assert result.normal_exit
        assert result.transactions[-1].value == 1

    def test_annul_pending_at_watchdog_boundary(self, emulator_cls):
        # `ba,a loop` alternates one executed branch with one annulled slot;
        # the budget expires with an annul pending.  Annulled instructions
        # must consume no budget and the run must end in a watchdog trap.
        source = """
        .text
loop:
        ba,a    loop
        nop
"""
        result, _ = run_on(emulator_cls, source, max_instructions=5)
        assert not result.halted
        assert result.trap is not None and result.trap.kind == "watchdog"
        assert result.instructions == 5
        assert result.trace.opcode_counts == {"ba": 5}

    def test_watchdog_boundary_is_bit_identical(self, emulator_cls):
        if emulator_cls is Emulator:
            pytest.skip("pairwise comparison runs once")
        program = assemble("        .text\nloop:\n        ba,a    loop\n        nop\n",
                           name="annul-loop")
        for budget in (1, 2, 5, 6):
            verify_bit_identity(program, max_instructions=budget)


# ---------------------------------------------------------------------------
# Backend / engine / façade selection
# ---------------------------------------------------------------------------


class TestSelection:
    def test_iss_backend_defaults_to_fast(self):
        assert IssBackend().fast is True
        assert IssBackend(fast=False).fast is False

    def test_backend_runs_identical_under_fault(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        results = {}
        for fast in (True, False):
            backend = IssBackend(fast=fast)
            backend.prepare(program)
            site = backend.sites.sample(1, units=[ARCH_REGFILE_UNIT], seed=7)[0]
            from repro.rtl.faults import PermanentFault

            fault = PermanentFault(site=site, model=FaultModel.STUCK_AT_1)
            results[fast] = backend.run(max_instructions=100_000, faults=[fault])
        fast_result, reference_result = results[True], results[False]
        assert fast_result.transactions == reference_result.transactions
        assert fast_result.trace == reference_result.trace
        assert fast_result.instructions == reference_result.instructions
        assert fast_result.cycles == reference_result.cycles
        assert fast_result.halted == reference_result.halted
        assert fast_result.exit_code == reference_result.exit_code
        assert fast_result.trap_kind == reference_result.trap_kind

    def test_campaign_config_selects_interpreter(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        config = CampaignConfig(
            unit_scope=ARCH_REGFILE_UNIT, sample_size=2, iss_fast=False
        )
        engine = CampaignEngine(program, config, backend_factory=IssBackend)
        assert engine.backend.fast is False
        default_engine = CampaignEngine(program, backend_factory=IssBackend)
        assert default_engine.backend.fast is True
        # Both interpreter choices share one store identity: the flag is
        # result-transparent and must not fork the campaign cache.
        assert backend_identity("iss", engine.backend_factory) == backend_identity(
            "iss", default_engine.backend_factory
        ) == backend_identity("iss", IssBackend)

    def test_campaign_config_honours_partial_iss_factories(self):
        import functools

        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        config = CampaignConfig(
            unit_scope=ARCH_REGFILE_UNIT, sample_size=2, iss_fast=False
        )
        # A partial that customises an unrelated flag must still get the
        # config's interpreter choice (silently ignoring iss_fast here was a
        # review finding); an explicit fast= binding wins over the config.
        engine = CampaignEngine(
            program,
            config,
            backend_factory=functools.partial(IssBackend, detailed_trace=True),
        )
        assert engine.backend.fast is False
        assert engine.backend.detailed_trace is True
        pinned = CampaignEngine(
            program,
            config,
            backend_factory=functools.partial(IssBackend, fast=True),
        )
        assert pinned.backend.fast is True
        # A positionally bound fast (second constructor argument) also wins —
        # rebinding it as a keyword would crash backend construction.
        positional = CampaignEngine(
            program,
            CampaignConfig(unit_scope=ARCH_REGFILE_UNIT, sample_size=2,
                           iss_fast=True),
            backend_factory=functools.partial(IssBackend, False, False),
        )
        assert positional.backend.fast is False

    def test_result_affecting_partials_get_their_own_identity(self):
        # Only the ISS interpreter flags are result-transparent: a partial
        # binding anything else (e.g. RTL cache geometry) must not alias the
        # bare factory's stored campaigns.
        import functools

        from repro.engine import Leon3RtlBackend

        bare = backend_identity("rtl", Leon3RtlBackend)
        tuned = backend_identity(
            "rtl", functools.partial(Leon3RtlBackend, icache_lines=8)
        )
        assert tuned != bare
        assert "icache_lines=8" in tuned
        # Every IssBackend partial collapses to the bare class: its only
        # constructor parameters are the result-transparent interpreter flags.
        for factory in (
            functools.partial(IssBackend, fast=False),
            functools.partial(IssBackend, True),
            functools.partial(IssBackend, False, False),
        ):
            assert backend_identity("iss", factory) == backend_identity(
                "iss", IssBackend
            )

    def test_object_bound_partials_are_refused(self):
        # An object's default repr embeds its memory address (key never
        # matches again), and rendering by type would alias
        # differently-configured instances (silently serving wrong stored
        # results) — so object-valued bound arguments must fail loud.
        import functools

        from repro.engine import Leon3RtlBackend
        from repro.leon3.core import Leon3Core

        with pytest.raises(ValueError, match="named zero-argument factory"):
            backend_identity(
                "rtl", functools.partial(Leon3RtlBackend, core=Leon3Core())
            )
        # Class-valued bound arguments are fine: qualified names are stable.
        identity = backend_identity(
            "rtl", functools.partial(Leon3RtlBackend, core_cls=Leon3Core)
        )
        assert "Leon3Core" in identity and "0x" not in identity

    def test_reused_faulty_emulators_stay_identical_after_reset(self):
        # reset() restarts the experiment on both interpreters: the transient
        # flip re-arms, and the second run matches bit for bit.
        from repro.iss.faults import _FaultyEmulator

        program = build_program("rspeed")
        fault = ArchitecturalFault(register=9, bit=5, model="bit_flip",
                                   trigger_index=40)
        reference = _FaultyEmulator(fault, memory=Memory())
        fast = FastEmulator(memory=Memory(), fault=fault)
        for emulator in (reference, fast):
            emulator.load_program(program)
            emulator.run(max_instructions=100_000)
            emulator.reset(entry_point=program.entry_point)
        second_reference = reference.run(max_instructions=100_000)
        second_fast = fast.run(max_instructions=100_000)
        fastpath.assert_results_identical(
            reference, second_reference, fast, second_fast
        )
        assert reference._flip_done and fast._flip_done

    def test_run_iss_campaign_fast_matches_reference(self):
        program = build_program("rspeed")
        shared = {
            "sample_size": 6, "fault_models": [FaultModel.STUCK_AT_1], "seed": 11,
        }
        fast = run_iss_campaign(program, fast=True, **shared)
        reference = run_iss_campaign(program, fast=False, **shared)
        for model in fast:
            assert fast[model].outcomes == reference[model].outcomes
            assert (
                fast[model].failure_probability
                == reference[model].failure_probability
            )
