"""Tests for the windowed register file (architectural model)."""

import pytest

from repro.isa.registers import RegisterFile, RegisterWindowError


class TestBasicAccess:
    def test_g0_reads_zero(self):
        regs = RegisterFile()
        assert regs.read(0) == 0

    def test_g0_ignores_writes(self):
        regs = RegisterFile()
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_globals_roundtrip(self):
        regs = RegisterFile()
        regs.write(5, 0xDEADBEEF)
        assert regs.read(5) == 0xDEADBEEF

    def test_values_wrapped_to_32_bits(self):
        regs = RegisterFile()
        regs.write(1, 1 << 40)
        assert regs.read(1) == 0

    def test_out_of_range_register_raises(self):
        regs = RegisterFile()
        with pytest.raises(IndexError):
            regs.read(32)
        with pytest.raises(IndexError):
            regs.write(-1, 0)

    def test_reset_clears_everything(self):
        regs = RegisterFile()
        regs.write(20, 7)
        regs.save()
        regs.reset()
        assert regs.read(20) == 0
        assert regs.cwp == 0


class TestWindows:
    def test_outs_become_ins_after_save(self):
        regs = RegisterFile()
        regs.write(8, 42)  # %o0
        regs.save()
        assert regs.read(24) == 42  # %i0 of the new window

    def test_ins_become_outs_after_restore(self):
        regs = RegisterFile()
        regs.save()
        regs.write(24, 17)  # %i0
        regs.restore()
        assert regs.read(8) == 17  # %o0 of the caller

    def test_locals_are_private_per_window(self):
        regs = RegisterFile()
        regs.write(16, 5)  # %l0
        regs.save()
        assert regs.read(16) == 0
        regs.write(16, 9)
        regs.restore()
        assert regs.read(16) == 5

    def test_globals_shared_across_windows(self):
        regs = RegisterFile()
        regs.write(1, 11)
        regs.save()
        assert regs.read(1) == 11

    def test_window_overflow_raises(self):
        regs = RegisterFile(nwindows=4)
        for _ in range(3):
            regs.save()
        with pytest.raises(RegisterWindowError):
            regs.save()

    def test_window_underflow_raises(self):
        regs = RegisterFile()
        with pytest.raises(RegisterWindowError):
            regs.restore()

    def test_nested_save_restore_depth(self):
        regs = RegisterFile()
        values = [100, 200, 300]
        for value in values:
            regs.write(16, value)
            regs.save()
        for value in reversed(values):
            regs.restore()
            assert regs.read(16) == value

    def test_minimum_window_count_enforced(self):
        with pytest.raises(ValueError):
            RegisterFile(nwindows=1)

    def test_snapshot_contains_visible_state(self):
        regs = RegisterFile()
        regs.write(1, 3)
        regs.write(8, 4)
        snap = regs.snapshot()
        assert snap["globals"][1] == 3
        assert snap["window"][0] == 4
        assert snap["cwp"] == 0
