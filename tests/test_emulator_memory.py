"""ISS functional emulator: loads, stores, I/O and off-core transactions."""

from conftest import run_asm


def _data_program(body: str, data: str = "        .word 0x11223344, 0x55667788") -> str:
    return f"""
        .text
        set     data_in, %l0
        set     out, %l1
{body}
        ta      0
        .data
data_in:
{data}
out:
        .space  32
"""


class TestLoads:
    def test_ld_word(self):
        source = _data_program("""
        ld      [%l0], %o0
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0x11223344

    def test_ldub_picks_correct_byte(self):
        source = _data_program("""
        ldub    [%l0 + 1], %o0
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0x22

    def test_ldsb_sign_extends(self):
        source = _data_program("""
        ldsb    [%l0], %o0
        st      %o0, [%l1]
""", data="        .word 0xFF000000")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0xFFFFFFFF

    def test_lduh_and_ldsh(self):
        source = _data_program("""
        lduh    [%l0 + 2], %o0
        st      %o0, [%l1]
        ldsh    [%l0 + 2], %o1
        st      %o1, [%l1 + 4]
""", data="        .word 0x0000F234")
        result, _ = run_asm(source)
        assert result.transactions[0].value == 0xF234
        assert result.transactions[1].value == 0xFFFFF234

    def test_ldd_loads_register_pair(self):
        source = _data_program("""
        ldd     [%l0], %g2
        st      %g2, [%l1]
        st      %g3, [%l1 + 4]
""")
        result, _ = run_asm(source)
        assert result.transactions[0].value == 0x11223344
        assert result.transactions[1].value == 0x55667788

    def test_register_indexed_load(self):
        source = _data_program("""
        mov     4, %g1
        ld      [%l0 + %g1], %o0
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0x55667788

    def test_misaligned_load_traps(self):
        source = _data_program("        ld      [%l0 + 2], %o0")
        result, _ = run_asm(source)
        assert result.halted and result.trap.kind == "memory"


class TestStores:
    def test_st_word_appears_off_core(self):
        source = _data_program("""
        set     0xCAFEBABE, %o0
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        transaction = result.transactions[-1]
        assert transaction.kind == "store"
        assert transaction.value == 0xCAFEBABE
        assert transaction.size == 4

    def test_stb_masks_to_byte(self):
        source = _data_program("""
        set     0x1234, %o0
        stb     %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0x34
        assert result.transactions[-1].size == 1

    def test_sth_masks_to_halfword(self):
        source = _data_program("""
        set     0xABCD1234, %o0
        sth     %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0x1234
        assert result.transactions[-1].size == 2

    def test_std_produces_two_transactions(self):
        source = _data_program("""
        set     0x11112222, %g2
        set     0x33334444, %g3
        std     %g2, [%l1]
""")
        result, _ = run_asm(source)
        assert [t.value for t in result.transactions] == [0x11112222, 0x33334444]

    def test_store_then_load_roundtrip(self):
        source = _data_program("""
        set     0x5A5A5A5A, %o0
        st      %o0, [%l1 + 8]
        ld      [%l1 + 8], %o1
        st      %o1, [%l1 + 12]
""")
        result, _ = run_asm(source)
        assert result.transactions[-1].value == 0x5A5A5A5A

    def test_store_order_is_preserved(self):
        source = _data_program("""
        mov     1, %o0
        st      %o0, [%l1]
        mov     2, %o0
        st      %o0, [%l1 + 4]
        mov     3, %o0
        st      %o0, [%l1 + 8]
""")
        result, _ = run_asm(source)
        assert [t.value for t in result.transactions] == [1, 2, 3]


class TestIo:
    def test_io_store_is_flagged(self):
        source = """
        .text
        set     0x80000100, %l0
        mov     9, %o0
        st      %o0, [%l0]
        ta      0
"""
        result, _ = run_asm(source)
        assert result.transactions[-1].kind == "io"

    def test_io_read_is_recorded(self):
        source = """
        .text
        set     0x80000200, %l0
        ld      [%l0], %o0
        ta      0
"""
        result, _ = run_asm(source)
        assert result.transactions and result.transactions[0].kind == "io"

    def test_regular_memory_loads_are_not_recorded(self):
        source = _data_program("        ld      [%l0], %o0")
        result, _ = run_asm(source)
        assert result.transactions == []


class TestTraceCounters:
    def test_memory_instruction_counters(self):
        source = _data_program("""
        ld      [%l0], %o0
        ld      [%l0 + 4], %o1
        st      %o0, [%l1]
""")
        result, _ = run_asm(source)
        assert result.trace.memory_reads == 2
        assert result.trace.memory_writes == 1
        assert result.trace.memory_instructions == 3


class TestIoReadValues:
    """I/O loads must record the value that came over the bus.

    The old behaviour hard-coded 0 into the transaction, so a fault that
    corrupts data read from the peripheral space was invisible to the
    off-core failure comparison.
    """

    IO_ADDRESS = 0x80000200

    IO_READ_SOURCE = """
        .text
        set     0x80000200, %l0
        ld      [%l0], %o0
        ta      0
"""

    def _run_with_peripheral_value(self, value: int):
        from repro.isa.assembler import assemble
        from repro.iss.emulator import Emulator
        from repro.iss.memory import Memory

        emulator = Emulator(memory=Memory())
        emulator.load_program(assemble(self.IO_READ_SOURCE, name="io-read"))
        # The peripheral space is backed by the same sparse memory; model the
        # device's mailbox by preloading it before the run.
        emulator.memory.write_word(self.IO_ADDRESS, value)
        return emulator.run()

    def test_io_load_transaction_records_loaded_value(self):
        result = self._run_with_peripheral_value(0xCAFEBABE)
        io = [t for t in result.transactions if t.kind == "io"]
        assert len(io) == 1
        assert io[0].address == self.IO_ADDRESS
        assert io[0].value == 0xCAFEBABE
        assert io[0].size == 4

    def test_io_signed_load_records_raw_bus_value(self):
        from repro.isa.assembler import assemble
        from repro.iss.emulator import Emulator
        from repro.iss.memory import Memory

        source = """
        .text
        set     0x80000200, %l0
        ldsb    [%l0], %o0
        ta      0
"""
        emulator = Emulator(memory=Memory())
        emulator.load_program(assemble(source, name="io-ldsb"))
        emulator.memory.write_byte(self.IO_ADDRESS, 0x80)
        result = emulator.run()
        io = [t for t in result.transactions if t.kind == "io"]
        # The transaction carries the raw bus byte; the register gets the
        # sign-extended value.
        assert io[0].value == 0x80
        assert emulator.registers.read(8) == 0xFFFFFF80

    def test_corrupted_peripheral_read_is_classified_as_failure(self):
        """Regression: golden and faulty runs that differ only in the data a
        peripheral returned must compare as WRONG_DATA, not NO_EFFECT."""
        from repro.engine.backend import RunResult
        from repro.faultinjection.comparison import FailureClass, compare_runs

        def as_run_result(native):
            return RunResult(
                backend="iss",
                transactions=native.transactions,
                trace=native.trace,
                instructions=native.instructions,
                cycles=native.cycles,
                halted=native.halted,
                exit_code=native.exit_code,
                trap_kind=None,
            )

        golden = self._run_with_peripheral_value(0x11111111)
        faulty = self._run_with_peripheral_value(0x22222222)
        comparison = compare_runs(as_run_result(golden), as_run_result(faulty))
        assert comparison.failure_class is FailureClass.WRONG_DATA
        assert comparison.is_failure
