"""Tests for the analysis utilities and the core diversity/correlation modules."""

import math

import pytest

from repro.analysis.regression import RegressionError, fit_linear, fit_log, r_squared
from repro.analysis.stats import (
    mean,
    proportion_confidence_interval,
    sample_standard_deviation,
)
from repro.core.correlation import (
    CorrelationPoint,
    correlate,
    correlation_from_measurements,
)
from repro.core.diversity import (
    characterize_program,
    diversity_from_opcodes,
    unit_diversities,
)
from repro.core.failure_model import (
    DiversityFailureModel,
    combine_unit_probabilities,
    per_unit_models_from_campaigns,
    predicted_failure_probability,
)
from repro.isa.instructions import FunctionalUnit
from repro.leon3.area import CMEM_UNITS, IU_UNITS, area_fraction, unit_area_table
from repro.leon3.units import functional_unit_for_path, unit_paths_for
from repro.workloads import build_program


class TestRegression:
    def test_perfect_linear_fit(self):
        fit = fit_linear([1, 2, 3, 4], [2, 4, 6, 8])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.0, abs=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_perfect_log_fit(self):
        xs = [1, 2, 4, 8, 16]
        ys = [0.05 * math.log(x) + 0.1 for x in xs]
        fit = fit_log(xs, ys)
        assert fit.coefficient == pytest.approx(0.05)
        assert fit.intercept == pytest.approx(0.1)
        assert fit.r2 == pytest.approx(1.0)

    def test_log_fit_predict(self):
        fit = fit_log([1, 10, 100], [0.0, 0.1, 0.2])
        assert fit.predict(10) == pytest.approx(0.1, abs=1e-6)

    def test_log_fit_rejects_non_positive_x(self):
        with pytest.raises(RegressionError):
            fit_log([0, 1], [0.1, 0.2])

    def test_fit_requires_two_points(self):
        with pytest.raises(RegressionError):
            fit_linear([1], [1])

    def test_fit_rejects_degenerate_x(self):
        with pytest.raises(RegressionError):
            fit_linear([3, 3, 3], [1, 2, 3])

    def test_r_squared_of_noisy_fit_below_one(self):
        xs = [1, 2, 3, 4, 5]
        ys = [1.0, 2.2, 2.7, 4.3, 4.8]
        fit = fit_linear(xs, ys)
        assert 0.9 < fit.r2 < 1.0

    def test_r_squared_constant_observed(self):
        assert r_squared([2, 2, 2], [2, 2, 2]) == 1.0

    def test_log_fit_describe_mentions_r2(self):
        fit = fit_log([1, 2, 4], [0.1, 0.2, 0.3])
        assert "R^2" in fit.describe()


class TestStats:
    def test_mean_and_empty_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_sample_standard_deviation(self):
        assert sample_standard_deviation([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            2.138, abs=1e-3
        )
        assert sample_standard_deviation([5]) == 0.0

    def test_confidence_interval_bounds(self):
        low, high = proportion_confidence_interval(30, 100)
        assert 0.0 <= low < 0.3 < high <= 1.0

    def test_confidence_interval_degenerate(self):
        assert proportion_confidence_interval(0, 0) == (0.0, 0.0)

    def test_confidence_interval_narrows_with_more_trials(self):
        low_small, high_small = proportion_confidence_interval(30, 100)
        low_large, high_large = proportion_confidence_interval(300, 1000)
        assert (high_large - low_large) < (high_small - low_small)


class TestDiversityAnalysis:
    def test_characterize_program_matches_trace(self):
        characterization = characterize_program(build_program("intbench"))
        assert characterization.total_instructions > 0
        assert characterization.diversity > 10
        assert characterization.memory_instructions < characterization.total_instructions
        row = characterization.as_row()
        assert set(row) == {"Total", "Integer Unit", "Memory", "Diversity"}

    def test_unit_diversity_is_bounded_by_overall(self):
        characterization = characterize_program(build_program("rspeed"))
        for value in characterization.unit_diversity.values():
            assert value <= characterization.diversity

    def test_fetch_unit_diversity_equals_overall(self):
        characterization = characterize_program(build_program("rspeed"))
        assert characterization.unit_diversity[FunctionalUnit.FETCH] == characterization.diversity

    def test_diversity_from_static_opcodes(self):
        assert diversity_from_opcodes(["add", "add", "sub", "bogus"]) == 2

    def test_unit_diversities_cover_all_units(self):
        characterization = characterize_program(build_program("intbench"))
        assert set(characterization.unit_diversity) == set(FunctionalUnit)

    def test_characterize_failing_program_raises(self):
        from repro.isa.assembler import assemble

        endless = assemble(".text\nloop:\n        ba loop\n        nop\n")
        with pytest.raises(RuntimeError):
            characterize_program(endless, max_instructions=200)


class TestFailureModel:
    def test_combine_uses_area_weights(self):
        probabilities = {
            FunctionalUnit.ALU_ADDER: 1.0,
            FunctionalUnit.SHIFTER: 0.0,
        }
        combined = combine_unit_probabilities(probabilities)
        expected = area_fraction(
            FunctionalUnit.ALU_ADDER,
            scope=(FunctionalUnit.ALU_ADDER, FunctionalUnit.SHIFTER),
        )
        assert combined == pytest.approx(expected)

    def test_combine_empty_is_zero(self):
        assert combine_unit_probabilities({}) == 0.0

    def test_combined_probability_within_bounds(self):
        probabilities = {unit: 0.5 for unit in IU_UNITS}
        assert combine_unit_probabilities(probabilities) == pytest.approx(0.5)

    def test_model_requires_two_points(self):
        model = DiversityFailureModel()
        model.add_observation(10, 0.2)
        assert not model.calibrated
        with pytest.raises(RuntimeError):
            model.predict(20)

    def test_model_predicts_monotonic_increase(self):
        model = DiversityFailureModel()
        model.add_observations([(8, 0.12), (20, 0.2), (47, 0.3)])
        assert model.predict(10) < model.predict(40)
        assert 0.0 <= model.predict(100) <= 1.0

    def test_model_rejects_bad_observations(self):
        model = DiversityFailureModel()
        with pytest.raises(ValueError):
            model.add_observation(0, 0.5)
        with pytest.raises(ValueError):
            model.add_observation(5, 1.5)

    def test_predicted_failure_probability_pipeline(self):
        models = {
            FunctionalUnit.ALU_ADDER: DiversityFailureModel(),
            FunctionalUnit.SHIFTER: DiversityFailureModel(),
        }
        models[FunctionalUnit.ALU_ADDER].add_observations([(5, 0.2), (20, 0.4)])
        models[FunctionalUnit.SHIFTER].add_observations([(2, 0.1), (3, 0.15)])
        prediction = predicted_failure_probability(
            {FunctionalUnit.ALU_ADDER: 10, FunctionalUnit.SHIFTER: 3}, models
        )
        assert 0.0 < prediction < 1.0

    def test_per_unit_models_from_campaigns(self):
        observations = [
            ({FunctionalUnit.ALU_ADDER: 5}, {FunctionalUnit.ALU_ADDER: 0.2}),
            ({FunctionalUnit.ALU_ADDER: 20}, {FunctionalUnit.ALU_ADDER: 0.35}),
        ]
        models = per_unit_models_from_campaigns(observations)
        assert FunctionalUnit.ALU_ADDER in models
        assert models[FunctionalUnit.ALU_ADDER].calibrated


class TestAreaTable:
    def test_fractions_sum_to_one(self):
        total = sum(area_fraction(unit) for unit in unit_area_table())
        assert total == pytest.approx(1.0)

    def test_scoped_fractions_sum_to_one(self):
        assert sum(area_fraction(u, scope=IU_UNITS) for u in IU_UNITS) == pytest.approx(1.0)
        assert sum(area_fraction(u, scope=CMEM_UNITS) for u in CMEM_UNITS) == pytest.approx(1.0)

    def test_unit_outside_scope_has_zero_fraction(self):
        assert area_fraction(FunctionalUnit.ICACHE, scope=IU_UNITS) == 0.0

    def test_unit_path_mapping(self):
        assert functional_unit_for_path("iu.alu.adder") is FunctionalUnit.ALU_ADDER
        assert functional_unit_for_path("cmem.dcache") is FunctionalUnit.DCACHE
        assert functional_unit_for_path("unknown.unit") is None

    def test_unit_paths_reverse_lookup(self):
        assert "iu.alu.shifter" in unit_paths_for(FunctionalUnit.SHIFTER)


class TestCorrelation:
    def _points(self):
        return [
            CorrelationPoint("a", 8, 0.12),
            CorrelationPoint("b", 11, 0.15),
            CorrelationPoint("c", 20, 0.22),
            CorrelationPoint("d", 47, 0.30),
            CorrelationPoint("e", 48, 0.31),
        ]

    def test_correlate_recovers_log_trend(self):
        result = correlate(self._points())
        assert result.coefficient > 0
        assert result.r_squared > 0.9

    def test_prediction_clamped_to_probability_range(self):
        result = correlate(self._points())
        assert 0.0 <= result.predict(1) <= 1.0
        assert 0.0 <= result.predict(1000) <= 1.0

    def test_residuals_length_matches_points(self):
        result = correlate(self._points())
        assert len(result.residuals()) == 5

    def test_correlate_requires_two_points(self):
        with pytest.raises(ValueError):
            correlate([CorrelationPoint("x", 5, 0.1)])

    def test_correlation_from_measurements_validates_lengths(self):
        with pytest.raises(ValueError):
            correlation_from_measurements(["a"], [1, 2], [0.1])

    def test_correlation_from_measurements(self):
        result = correlation_from_measurements(
            ["a", "b", "c"], [8, 20, 47], [0.1, 0.2, 0.3]
        )
        assert result.r_squared > 0.9
        assert result.describe().startswith("y =")
