"""Tests for architectural (ISS-level) fault injection."""

import pytest

from repro.iss.faults import ArchitecturalFault, IssFaultInjector

from conftest import SMALL_PROGRAM_SOURCE
from repro.isa.assembler import assemble


@pytest.fixture
def injector():
    return IssFaultInjector(assemble(SMALL_PROGRAM_SOURCE, name="small"))


class TestArchitecturalFault:
    def test_stuck_at_one_sets_bit(self):
        fault = ArchitecturalFault(register=8, bit=3, model="stuck_at_1")
        assert fault.apply(0) == 8

    def test_stuck_at_zero_clears_bit(self):
        fault = ArchitecturalFault(register=8, bit=0, model="stuck_at_0")
        assert fault.apply(0xF) == 0xE

    def test_bit_flip_toggles(self):
        fault = ArchitecturalFault(register=8, bit=1, model="bit_flip")
        assert fault.apply(0) == 2
        assert fault.apply(2) == 0

    def test_invalid_register_rejected(self):
        with pytest.raises(ValueError):
            ArchitecturalFault(register=40, bit=0, model="stuck_at_1")

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            ArchitecturalFault(register=1, bit=32, model="stuck_at_1")

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            ArchitecturalFault(register=1, bit=0, model="stuck_open")


class TestIssFaultInjector:
    def test_golden_run_is_cached(self, injector):
        first = injector.golden_run()
        second = injector.golden_run()
        assert first is second
        assert first.normal_exit

    def test_fault_in_unused_register_is_masked(self, injector):
        # %i5 (register 29) is never used by the small program.
        fault = ArchitecturalFault(register=29, bit=7, model="stuck_at_1")
        faulty = injector.run_with_fault(fault)
        assert not injector.is_failure(faulty)

    def test_fault_in_live_register_causes_failure(self, injector):
        # %o0 (register 8) holds a loaded operand: stick a high bit.
        fault = ArchitecturalFault(register=8, bit=16, model="stuck_at_1")
        faulty = injector.run_with_fault(fault)
        assert injector.is_failure(faulty)

    def test_g0_faults_never_propagate(self, injector):
        fault = ArchitecturalFault(register=0, bit=5, model="stuck_at_1")
        faulty = injector.run_with_fault(fault)
        assert not injector.is_failure(faulty)

    def test_campaign_statistics_are_consistent(self, injector):
        faults = [
            ArchitecturalFault(register=reg, bit=bit, model="stuck_at_1")
            for reg, bit in [(8, 0), (8, 20), (29, 3), (0, 1)]
        ]
        summary = injector.campaign(faults)
        assert summary["total"] == 4
        assert 0 <= summary["failures"] <= 4
        assert summary["failure_probability"] == summary["failures"] / 4
        assert len(summary["outcomes"]) == 4

    def test_transient_flip_late_in_program_is_less_harmful(self, injector):
        early = ArchitecturalFault(register=8, bit=30, model="bit_flip", trigger_index=0)
        late = ArchitecturalFault(register=8, bit=30, model="bit_flip", trigger_index=10_000)
        early_failed = injector.is_failure(injector.run_with_fault(early))
        late_failed = injector.is_failure(injector.run_with_fault(late))
        # The late flip triggers after the program finished using %o0 (or not
        # at all), so it can only be benign if the early one is too.
        assert late_failed <= early_failed
