"""Cross-cutting property tests of the store/engine contract.

Three families, complementing ``tests/test_store.py``'s behavioural suite:

* **Key canonicalisation** — content keys are insensitive to JSON payload
  insertion order (canonical serialisation) while staying sensitive to plan
  order (sites and models are an ordered sample, not a set).
* **Schema migration** — a populated v1 database opens under the current
  schema with every stored outcome reconstructing bit-identically, and a
  database stamped by a *newer* schema is refused (exit 2 at the CLI).
* **Garbage collection reachability** — ``store gc`` never collects an
  incomplete campaign that is still reachable from a run manifest or a
  shard row, whatever combination of campaigns a store holds; and a golden
  artifact referenced by any surviving campaign survives the sweep with it.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import SMALL_PROGRAM_SOURCE

from repro.engine import Leon3RtlBackend, shard_token
from repro.isa.assembler import assemble
from repro.rtl.faults import FaultModel
from repro.rtl.sites import FaultSite
from repro.store import (
    SCHEMA_VERSION,
    CampaignStore,
    StoreError,
    campaign_key,
    memo_key,
    report_payload,
)
from repro.store.cli import main as cli_main


@pytest.fixture(scope="module")
def small_program():
    return assemble(SMALL_PROGRAM_SOURCE, name="small")


# ---------------------------------------------------------------------------
# Key canonicalisation
# ---------------------------------------------------------------------------

_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.none() | st.booleans() | st.integers() | st.text(max_size=8),
    min_size=1,
    max_size=6,
)


class TestKeyCanonicalisation:
    @given(payload=_payloads, data=st.data())
    def test_memo_key_ignores_payload_insertion_order(self, payload, data):
        shuffled = dict(data.draw(st.permutations(list(payload.items()))))
        assert memo_key("table1", dict(shuffled)) == memo_key("table1", payload)

    def _key(self, program, sites, fault_models, transient=None):
        return campaign_key(
            program=program,
            sites=sites,
            fault_models=fault_models,
            seed=11,
            backend_id="rtl:repro.engine.backend.Leon3RtlBackend",
            unit_scope="iu",
            sample_size=4,
            max_instructions=400_000,
            transient=transient,
        )

    def test_campaign_key_ignores_transient_dict_order(self, small_program):
        forward = {"windows": 2, "duration": 1, "jobs": ["a", "b"]}
        backward = dict(reversed(list(forward.items())))
        assert self._key(small_program, [], [], transient=forward) == self._key(
            small_program, [], [], transient=backward
        )

    def test_campaign_key_is_sensitive_to_plan_order(self, small_program):
        """Sites and models are an *ordered* sample — the plan's job order —
        so reordering them is a different campaign, not a different spelling."""
        sites = [
            FaultSite(net="iu.reg", bit=0, unit="iu"),
            FaultSite(net="iu.pc", bit=3, unit="iu"),
        ]
        models = [FaultModel.STUCK_AT_1, FaultModel.STUCK_AT_0]
        base = self._key(small_program, sites, models)
        assert self._key(small_program, sites[::-1], models) != base
        assert self._key(small_program, sites, models[::-1]) != base


# ---------------------------------------------------------------------------
# Schema migration
# ---------------------------------------------------------------------------

#: The version-1 schema as PR 2 shipped it: no ``start_cycle``/``duration``
#: outcome columns, no ``manifests``, no ``shards``.
_V1_SCHEMA = """
CREATE TABLE campaigns (
    key                 TEXT PRIMARY KEY,
    workload            TEXT NOT NULL,
    unit_scope          TEXT NOT NULL,
    backend             TEXT NOT NULL,
    seed                INTEGER NOT NULL,
    sample_size         INTEGER,
    max_instructions    INTEGER NOT NULL,
    fault_models        TEXT NOT NULL,
    total_jobs          INTEGER NOT NULL,
    status              TEXT NOT NULL DEFAULT 'running'
                        CHECK (status IN ('running', 'complete')),
    golden_instructions INTEGER,
    golden_cycles       INTEGER,
    golden_transactions INTEGER,
    hit_count           INTEGER NOT NULL DEFAULT 0,
    config_json         TEXT NOT NULL DEFAULT '{}',
    created_at          TEXT NOT NULL,
    updated_at          TEXT NOT NULL
);
CREATE TABLE outcomes (
    campaign_key        TEXT NOT NULL
                        REFERENCES campaigns(key) ON DELETE CASCADE,
    job_index           INTEGER NOT NULL,
    fault_model         TEXT NOT NULL,
    net                 TEXT NOT NULL,
    bit                 INTEGER NOT NULL,
    unit                TEXT NOT NULL,
    cell_index          INTEGER,
    failure_class       TEXT NOT NULL,
    detection_cycle     INTEGER,
    faulty_instructions INTEGER NOT NULL,
    seconds             REAL NOT NULL DEFAULT 0.0,
    PRIMARY KEY (campaign_key, job_index)
);
CREATE TABLE memos (
    key        TEXT PRIMARY KEY,
    kind       TEXT NOT NULL,
    payload    TEXT NOT NULL,
    created_at TEXT NOT NULL
);
CREATE TABLE counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX idx_outcomes_campaign ON outcomes (campaign_key);
"""

_V1_KEY = "ab" * 32

_V1_OUTCOMES = (
    (0, "stuck_at_1", "iu.reg", 3, "iu", None, "no_effect", None, 118),
    (1, "stuck_at_0", "iu.pc", 7, "iu", None, "wrong_data", 42, 96),
)


def _write_v1_store(path):
    """A populated store exactly as schema version 1 would have left it."""
    conn = sqlite3.connect(path)
    conn.executescript(_V1_SCHEMA)
    conn.execute(
        """
        INSERT INTO campaigns (
            key, workload, unit_scope, backend, seed, sample_size,
            max_instructions, fault_models, total_jobs, status,
            golden_instructions, golden_cycles, golden_transactions,
            hit_count, config_json, created_at, updated_at
        ) VALUES (?, 'small', 'iu', 'rtl', 11, 2, 400000,
                  '["stuck_at_1", "stuck_at_0"]', 2, 'complete',
                  118, 236, 9, 0,
                  '{"fault_models": ["stuck_at_1", "stuck_at_0"]}',
                  '2025-01-01T00:00:00+00:00', '2025-01-01T00:00:00+00:00')
        """,
        (_V1_KEY,),
    )
    conn.executemany(
        """
        INSERT INTO outcomes (
            campaign_key, job_index, fault_model, net, bit, unit,
            cell_index, failure_class, detection_cycle, faulty_instructions
        ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
        """,
        [(_V1_KEY, *row) for row in _V1_OUTCOMES],
    )
    conn.execute("INSERT INTO counters (name, value) VALUES ('jobs_executed', 2)")
    conn.execute("PRAGMA user_version = 1")
    conn.commit()
    conn.close()


class TestSchemaMigration:
    def test_v1_store_migrates_in_place_and_round_trips(self, tmp_path):
        path = str(tmp_path / "v1.sqlite")
        _write_v1_store(path)
        with CampaignStore(path) as store:
            (version,) = store._conn.execute("PRAGMA user_version").fetchone()
            assert version == SCHEMA_VERSION
            columns = {
                row[1]
                for row in store._conn.execute("PRAGMA table_info(outcomes)")
            }
            assert {"start_cycle", "duration"} <= columns
            tables = {
                row[0]
                for row in store._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            assert {"manifests", "shards"} <= tables

            # Every v1 row reconstructs bit-identically as a permanent job.
            info = store.campaign_info(_V1_KEY)
            assert info.complete and info.done_jobs == info.total_jobs == 2
            records = store.stored_records(_V1_KEY)
            assert [
                (
                    r.job.index,
                    r.job.fault_model.value,
                    r.job.site.net,
                    r.job.site.bit,
                    r.job.site.unit,
                    r.job.site.index,
                    r.failure_class.value,
                    r.detection_cycle,
                    r.faulty_instructions,
                )
                for r in records
            ] == list(_V1_OUTCOMES)
            assert not any(hasattr(r.job, "start_cycle") for r in records)
            assert store.counters()["jobs_executed"] == 2
            assert store.shard_rows(_V1_KEY) == []

            # The migrated store is fully usable: report, manifests, shards.
            payload = report_payload(store, info)
            assert payload["done_jobs"] == 2
            assert [m["injections"] for m in payload["models"]] == [1, 1]
            store.put_manifest(_V1_KEY, {"manifest_version": 1})
            assert store.get_manifest(_V1_KEY) == {"manifest_version": 1}

    def test_v1_migration_is_stable_across_reopen(self, tmp_path):
        path = str(tmp_path / "v1.sqlite")
        _write_v1_store(path)
        with CampaignStore(path) as store:
            first = store.stored_records(_V1_KEY)
        with CampaignStore(path) as store:
            assert store.stored_records(_V1_KEY) == first

    def test_populated_v4_store_gains_artifact_tables(
        self, small_program, tmp_path
    ):
        """v4 -> v5 is purely additive: a populated v4 database (no
        ``artifacts``/``artifact_refs`` tables) opens under v5 with its
        campaign data untouched and the artifact cache immediately usable."""
        path = str(tmp_path / "v4.sqlite")
        with CampaignStore(path) as store:
            session = store.begin_campaign(
                program=small_program,
                sites=[],
                fault_models=[FaultModel.STUCK_AT_1],
                seed=7,
                unit_scope="iu",
                sample_size=None,
                max_instructions=400_000,
                backend_name="rtl",
                backend_factory=Leon3RtlBackend,
                total_jobs=2,
            )
            session.put_manifest({"manifest_version": 1})
            session.mark_complete()
            key = session.key
        # Rewind the file to exactly what schema v4 shipped.
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            DROP TABLE artifact_refs;
            DROP TABLE artifacts;
            PRAGMA user_version = 4;
            """
        )
        conn.commit()
        conn.close()
        with CampaignStore(path) as store:
            (version,) = store._conn.execute("PRAGMA user_version").fetchone()
            assert version == SCHEMA_VERSION
            info = store.campaign_info(key)
            assert info.total_jobs == 2
            assert store.get_manifest(key) == {"manifest_version": 1}
            assert store.list_artifacts() == []
            assert store.artifact_put("ab" * 32, "golden", "small", "rtl", b"x")
            store.artifact_ref("ab" * 32, key)
            assert store.artifact_get("ab" * 32) == b"x"
            (artifact,) = store.list_artifacts()
            assert artifact.refs == 1

    def test_newer_schema_is_refused(self, tmp_path):
        path = str(tmp_path / "future.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="newer schema"):
            CampaignStore(path)


# ---------------------------------------------------------------------------
# Garbage collection reachability
# ---------------------------------------------------------------------------


class TestGcReachability:
    def _begin(self, store, program, seed):
        return store.begin_campaign(
            program=program,
            sites=[],
            fault_models=[FaultModel.STUCK_AT_1],
            seed=seed,
            unit_scope="iu",
            sample_size=None,
            max_instructions=400_000,
            backend_name="rtl",
            backend_factory=Leon3RtlBackend,
            total_jobs=2,
        )

    @settings(max_examples=25, deadline=None)
    @given(
        flags=st.lists(
            st.tuples(st.booleans(), st.booleans(), st.booleans()),
            min_size=1,
            max_size=5,
        )
    )
    def test_gc_never_collects_reachable_campaigns(self, small_program, flags):
        """Whatever mix a store holds, ``gc()`` keeps exactly the campaigns
        that are complete, manifest-referenced or shard-referenced."""
        with CampaignStore(":memory:") as store:
            expected = set()
            for index, (complete, manifest, shard) in enumerate(flags):
                session = self._begin(store, small_program, seed=index)
                if manifest:
                    session.put_manifest({"manifest_version": 1})
                if shard:
                    session.record_shard(
                        shard_count=2,
                        shard_index=0,
                        token=shard_token(session.key, 2, 0),
                        job_lo=0,
                        job_hi=1,
                    )
                if complete:
                    session.mark_complete()
                if complete or manifest or shard:
                    expected.add(session.key)
            removed = store.gc()
            survivors = {info.key for info in store.list_campaigns()}
            assert survivors == expected
            assert removed["campaigns"] == len(flags) - len(expected)

            # --all overrides the reachability protection.
            store.gc(all_campaigns=True)
            assert store.list_campaigns() == []

    def test_gc_keeps_a_shard_store_campaign(self, small_program, tmp_path):
        path = str(tmp_path / "shard.sqlite")
        with CampaignStore(path) as store:
            session = self._begin(store, small_program, seed=1)
            session.record_shard(
                shard_count=3,
                shard_index=1,
                token=shard_token(session.key, 3, 1),
                job_lo=1,
                job_hi=2,
            )
            assert store.gc()["campaigns"] == 0
            assert len(store.list_campaigns()) == 1

    @settings(max_examples=25, deadline=None)
    @given(
        flags=st.lists(
            st.tuples(st.booleans(), st.booleans(), st.booleans()),
            min_size=1,
            max_size=5,
        )
    )
    def test_gc_keeps_artifacts_of_surviving_campaigns(
        self, small_program, flags
    ):
        """A golden artifact lives exactly as long as some campaign
        references it: ``gc()`` sweeps artifacts whose every referencing
        campaign was collected (including incomplete-but-shard-referenced
        ones, which survive and keep their artifact alive), and never an
        artifact a surviving campaign still points at."""
        with CampaignStore(":memory:") as store:
            expected_artifacts = set()
            for index, (complete, manifest, shard) in enumerate(flags):
                session = self._begin(store, small_program, seed=index)
                artifact = f"{index:02d}" * 32
                store.artifact_put(
                    artifact, "golden", "small", "rtl", b"payload"
                )
                store.artifact_ref(artifact, session.key)
                if manifest:
                    session.put_manifest({"manifest_version": 1})
                if shard:
                    session.record_shard(
                        shard_count=2,
                        shard_index=0,
                        token=shard_token(session.key, 2, 0),
                        job_lo=0,
                        job_hi=1,
                    )
                if complete:
                    session.mark_complete()
                if complete or manifest or shard:
                    expected_artifacts.add(artifact)
            # One orphan with no referencing campaign at all: always swept.
            store.artifact_put("ff" * 32, "ladder", "small", "rtl", b"x")
            removed = store.gc()
            survivors = {info.key for info in store.list_artifacts()}
            assert survivors == expected_artifacts
            assert removed["artifacts"] == len(flags) + 1 - len(
                expected_artifacts
            )
            # Collecting the campaigns cascades their refs, so a full
            # --all pass leaves nothing for the artifact sweep to keep.
            store.gc(all_campaigns=True)
            assert store.list_artifacts() == []

    def test_artifact_gc_respects_refs_until_all(self, small_program):
        with CampaignStore(":memory:") as store:
            session = self._begin(store, small_program, seed=1)
            session.mark_complete()
            store.artifact_put("aa" * 32, "golden", "small", "rtl", b"used")
            store.artifact_ref("aa" * 32, session.key)
            store.artifact_put("bb" * 32, "golden", "small", "rtl", b"orphan")
            removed = store.artifact_gc()
            assert removed["artifacts"] == 1 and removed["bytes"] == 6
            assert [info.key for info in store.list_artifacts()] == ["aa" * 32]
            removed = store.artifact_gc(all_artifacts=True)
            assert removed["artifacts"] == 1
            assert store.list_artifacts() == []

    def test_ref_to_unknown_artifact_or_campaign_is_a_noop(
        self, small_program
    ):
        """Publication is best-effort (uncacheable goldens skip it), so the
        reachability edge must be safe to record unconditionally."""
        with CampaignStore(":memory:") as store:
            session = self._begin(store, small_program, seed=1)
            store.artifact_ref("cc" * 32, session.key)  # no such artifact
            store.artifact_put("dd" * 32, "golden", "small", "rtl", b"x")
            store.artifact_ref("dd" * 32, "ee" * 32)  # no such campaign
            refs = store._conn.execute(
                "SELECT COUNT(*) FROM artifact_refs"
            ).fetchone()[0]
            assert refs == 0


# ---------------------------------------------------------------------------
# CLI exit-code regression: unusable stores are exit 2, operational errors 1
# ---------------------------------------------------------------------------


class TestCliExitCodes:
    READ_ONLY_COMMANDS = (
        ("campaign", "status"),
        ("campaign", "report"),
        ("store", "ls"),
        ("store", "gc"),
    )

    def test_missing_store_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.sqlite")
        for command in self.READ_ONLY_COMMANDS:
            assert cli_main([*command, "--store", missing]) == 2
            assert "no store database" in capsys.readouterr().err

    def test_corrupt_store_is_exit_2(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.sqlite"
        corrupt.write_text("this is not a sqlite database\n" * 64)
        for command in self.READ_ONLY_COMMANDS:
            assert cli_main([*command, "--store", str(corrupt)]) == 2
            assert "not a usable SQLite database" in capsys.readouterr().err

    def test_newer_schema_store_is_exit_2(self, tmp_path, capsys):
        path = str(tmp_path / "future.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        assert cli_main(["campaign", "status", "--store", path]) == 2
        assert "newer schema" in capsys.readouterr().err

    def test_merge_with_missing_source_is_exit_2(self, tmp_path, capsys):
        dest = str(tmp_path / "dest.sqlite")
        assert cli_main(
            ["store", "merge", dest, str(tmp_path / "nope.sqlite")]
        ) == 2
        assert "no store database" in capsys.readouterr().err

    def test_operational_errors_stay_exit_1(self, tmp_path, capsys):
        empty = str(tmp_path / "empty.sqlite")
        CampaignStore(empty).close()
        assert cli_main(["campaign", "report", "--store", empty]) == 1
        assert "store is empty" in capsys.readouterr().err
        assert cli_main(["campaign", "status", "--store", empty]) == 0
        assert "store is empty" in capsys.readouterr().out
