"""Tests for the structural Leon3 core: golden runs and ISS co-simulation."""

import pytest

from repro.isa.assembler import assemble
from repro.iss.emulator import Emulator
from repro.iss.memory import Memory
from repro.leon3.core import Leon3Core, run_program_rtl
from repro.rtl.faults import FaultModel, PermanentFault

from conftest import SMALL_PROGRAM_SOURCE


def _cosimulate(source: str, max_instructions: int = 200_000):
    """Run *source* on both simulators and return (iss_result, rtl_result)."""
    program = assemble(source, name="cosim")
    emulator = Emulator(memory=Memory())
    emulator.load_program(program)
    iss = emulator.run(max_instructions=max_instructions)
    rtl = run_program_rtl(program, max_instructions=max_instructions)
    return iss, rtl


def _same_off_core_behaviour(iss, rtl) -> bool:
    if len(iss.transactions) != len(rtl.transactions):
        return False
    return all(a.matches(b) for a, b in zip(iss.transactions, rtl.transactions))


class TestGoldenRun:
    def test_small_program_exits_normally(self, small_program):
        result = run_program_rtl(small_program)
        assert result.normal_exit
        assert result.instructions > 0
        assert result.cycles >= result.instructions

    def test_transaction_cycles_are_monotonic(self, small_program):
        result = run_program_rtl(small_program)
        assert len(result.transaction_cycles) == len(result.transactions)
        assert all(
            earlier <= later
            for earlier, later in zip(result.transaction_cycles, result.transaction_cycles[1:])
        )

    def test_trace_matches_instruction_count(self, small_program):
        result = run_program_rtl(small_program)
        assert result.trace.total_instructions == result.instructions

    def test_caches_observe_traffic(self, small_program):
        result = run_program_rtl(small_program)
        assert result.icache_misses > 0

    def test_run_requires_loaded_program(self):
        core = Leon3Core()
        with pytest.raises(RuntimeError):
            core.reset()

    def test_reload_restores_memory_image(self, small_program):
        core = Leon3Core()
        core.load_program(small_program)
        first = core.run()
        core.reload()
        second = core.run()
        assert _same_off_core_behaviour(first, second)

    def test_site_universe_covers_iu_and_cmem(self):
        core = Leon3Core()
        assert core.sites.count(["iu"]) > 1000
        assert core.sites.count(["cmem"]) > 1000


class TestCoSimulation:
    def test_small_program_matches_iss(self):
        iss, rtl = _cosimulate(SMALL_PROGRAM_SOURCE)
        assert iss.normal_exit and rtl.normal_exit
        assert _same_off_core_behaviour(iss, rtl)

    def test_arithmetic_and_flags_program(self):
        source = """
        .text
        set     out, %l1
        set     0x7FFFFFFF, %o0
        addcc   %o0, 1, %o1            ! overflow
        bvs     overflowed
        nop
        mov     0, %o2
        ba      store
        nop
overflowed:
        mov     1, %o2
store:
        st      %o1, [%l1]
        st      %o2, [%l1 + 4]
        subcc   %g0, 1, %o3
        addx    %g0, 0, %o4            ! capture carry
        st      %o4, [%l1 + 8]
        ta      0
        .data
out:
        .space  16
"""
        iss, rtl = _cosimulate(source)
        assert _same_off_core_behaviour(iss, rtl)

    def test_memory_access_program(self):
        source = """
        .text
        set     table, %l0
        set     out, %l1
        mov     0, %l2
        mov     0, %o0
sum_loop:
        sll     %l2, 2, %g1
        ld      [%l0 + %g1], %g2
        add     %o0, %g2, %o0
        sth     %o0, [%l1]
        stb     %o0, [%l1 + 2]
        inc     %l2
        cmp     %l2, 8
        bl      sum_loop
        nop
        st      %o0, [%l1 + 4]
        ldd     [%l0], %g2
        std     %g2, [%l1 + 8]
        ta      0
        .data
table:
        .word   1, 2, 3, 4, 5, 6, 7, 8
out:
        .space  32
"""
        iss, rtl = _cosimulate(source)
        assert _same_off_core_behaviour(iss, rtl)

    def test_call_and_window_program(self):
        source = """
        .text
        set     out, %l1
        mov     6, %o0
        call    factorialish
        nop
        st      %o0, [%l1]
        ta      0
factorialish:
        save    %sp, -96, %sp
        mov     1, %l0
        mov     1, %l2
fact_loop:
        umul    %l0, %l2, %l0
        inc     %l2
        cmp     %l2, %i0
        ble     fact_loop
        nop
        mov     %l0, %i0
        ret
        restore %i0, 0, %o0
        .data
out:
        .space  8
"""
        iss, rtl = _cosimulate(source)
        assert _same_off_core_behaviour(iss, rtl)
        assert iss.transactions[0].value == 720

    def test_division_and_y_register_program(self):
        source = """
        .text
        set     out, %l1
        set     1000000, %o0
        mov     7, %o1
        wr      %g0, 0, %y
        udiv    %o0, %o1, %o2
        st      %o2, [%l1]
        umul    %o2, %o1, %o3
        rd      %y, %o4
        st      %o3, [%l1 + 4]
        st      %o4, [%l1 + 8]
        ta      0
        .data
out:
        .space  16
"""
        iss, rtl = _cosimulate(source)
        assert _same_off_core_behaviour(iss, rtl)

    def test_traps_agree_between_simulators(self):
        source = """
        .text
        wr      %g0, 0, %y
        mov     3, %o0
        mov     0, %o1
        udiv    %o0, %o1, %o2
        ta      0
"""
        iss, rtl = _cosimulate(source)
        assert iss.halted and rtl.halted
        assert not rtl.normal_exit
        assert rtl.trap_kind == "division_by_zero"


class TestFaultBehaviour:
    def test_injected_fault_changes_off_core_stream(self, small_program):
        golden = run_program_rtl(small_program)
        core = Leon3Core()
        core.load_program(small_program)
        site = core.netlist.site_for("alu.adder.sum", 0)
        core.inject([PermanentFault(site, FaultModel.STUCK_AT_1)])
        faulty = core.run(max_instructions=golden.instructions * 2 + 100)
        assert not _same_off_core_behaviour(golden, faulty)

    def test_fault_in_unused_unit_is_masked(self, small_program):
        golden = run_program_rtl(small_program)
        core = Leon3Core()
        core.load_program(small_program)
        # The small program never divides: divider faults must be masked.
        site = core.netlist.site_for("alu.div.quotient", 3)
        core.inject([PermanentFault(site, FaultModel.STUCK_AT_1)])
        faulty = core.run(max_instructions=golden.instructions * 2 + 100)
        assert _same_off_core_behaviour(golden, faulty)

    def test_clear_faults_restores_golden_behaviour(self, small_program):
        golden = run_program_rtl(small_program)
        core = Leon3Core()
        core.load_program(small_program)
        site = core.netlist.site_for("alu.adder.sum", 1)
        core.inject([PermanentFault(site, FaultModel.STUCK_AT_1)])
        core.run(max_instructions=golden.instructions * 2 + 100)
        core.clear_faults()
        core.reload()
        clean = core.run()
        assert _same_off_core_behaviour(golden, clean)

    def test_active_faults_reported_in_result(self, small_program):
        core = Leon3Core()
        core.load_program(small_program)
        fault = PermanentFault(core.netlist.site_for("iu.fe.pc", 2), FaultModel.STUCK_AT_0)
        core.inject([fault])
        result = core.run(max_instructions=1000)
        assert fault in result.faults
