"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import (
    DEFAULT_DATA_BASE,
    DEFAULT_TEXT_BASE,
    Assembler,
    AssemblyError,
    assemble,
    parse_register,
)
from repro.isa.decoder import decode


class TestRegisterParsing:
    def test_globals(self):
        assert parse_register("%g0") == 0
        assert parse_register("%g7") == 7

    def test_outs_locals_ins(self):
        assert parse_register("%o0") == 8
        assert parse_register("%l0") == 16
        assert parse_register("%i7") == 31

    def test_raw_register_numbers(self):
        assert parse_register("%r13") == 13

    def test_aliases(self):
        assert parse_register("%sp") == 14
        assert parse_register("%fp") == 30

    def test_invalid_register_raises(self):
        with pytest.raises(AssemblyError):
            parse_register("%q3")

    def test_out_of_range_register_raises(self):
        with pytest.raises(AssemblyError):
            parse_register("%g9")


class TestBasicAssembly:
    def test_simple_add(self):
        program = assemble(".text\n        add %g1, %g2, %g3\n")
        inst = decode(program.text[0])
        assert inst.mnemonic == "add"
        assert (inst.rs1, inst.rs2, inst.rd) == (1, 2, 3)

    def test_immediate_operand(self):
        program = assemble(".text\n        add %g1, -5, %g3\n")
        inst = decode(program.text[0])
        assert inst.imm == -5

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblyError):
            assemble(".text\n        add %g1, 5000, %g3\n")

    def test_load_store_syntax(self):
        program = assemble(
            ".text\n        ld [%l0 + 8], %o0\n        st %o0, [%l1 - 4]\n"
        )
        load = decode(program.text[0])
        store = decode(program.text[1])
        assert load.mnemonic == "ld" and load.imm == 8
        assert store.mnemonic == "st" and store.imm == -4

    def test_register_indexed_address(self):
        program = assemble(".text\n        ld [%l0 + %g2], %o0\n")
        inst = decode(program.text[0])
        assert not inst.uses_immediate
        assert inst.rs2 == 2

    def test_comments_are_ignored(self):
        program = assemble(".text\n        add %g1, %g2, %g3 ! a comment\n")
        assert len(program.text) == 1

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".text\n        frobnicate %g1, %g2, %g3\n")

    def test_text_base_default(self):
        program = assemble(".text\nstart:\n        nop\n")
        assert program.entry_point == DEFAULT_TEXT_BASE
        assert program.symbol("start") == DEFAULT_TEXT_BASE


class TestLabelsAndBranches:
    def test_forward_branch_displacement(self):
        source = """
        .text
        be target
        nop
        nop
target:
        nop
"""
        program = assemble(source)
        branch = decode(program.text[0])
        assert branch.disp == 12

    def test_backward_branch_displacement(self):
        source = """
        .text
loop:
        nop
        ba loop
        nop
"""
        program = assemble(source)
        branch = decode(program.text[1])
        assert branch.disp == -4

    def test_annulled_branch(self):
        source = ".text\n        be,a skip\n        nop\nskip:\n        nop\n"
        program = assemble(source)
        assert decode(program.text[0]).annul is True

    def test_branch_alias_blu_maps_to_bcs(self):
        source = ".text\nloop:\n        blu loop\n        nop\n"
        assert decode(assemble(source).text[0]).mnemonic == "bcs"

    def test_branch_alias_bgeu_maps_to_bcc(self):
        source = ".text\nloop:\n        bgeu loop\n        nop\n"
        assert decode(assemble(source).text[0]).mnemonic == "bcc"

    def test_call_displacement(self):
        source = """
        .text
        call function
        nop
        nop
function:
        retl
        nop
"""
        program = assemble(source)
        assert decode(program.text[0]).disp == 12

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".text\na:\n        nop\na:\n        nop\n")

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".text\n        ba nowhere\n        nop\n")


class TestPseudoInstructions:
    def test_nop_is_sethi_zero(self):
        program = assemble(".text\n        nop\n")
        inst = decode(program.text[0])
        assert inst.mnemonic == "sethi" and inst.rd == 0

    def test_set_expands_to_sethi_or(self):
        program = assemble(".text\n        set 0x12345678, %g1\n")
        assert len(program.text) == 2
        sethi, orop = (decode(word) for word in program.text)
        assert sethi.mnemonic == "sethi"
        assert orop.mnemonic == "or"
        # Reconstruct the constant: (imm22 << 10) | lo10
        assert (sethi.imm << 10) | orop.imm == 0x12345678

    def test_mov_is_or_with_g0(self):
        inst = decode(assemble(".text\n        mov 7, %o0\n").text[0])
        assert inst.mnemonic == "or" and inst.rs1 == 0 and inst.imm == 7

    def test_cmp_is_subcc_to_g0(self):
        inst = decode(assemble(".text\n        cmp %o0, 3\n").text[0])
        assert inst.mnemonic == "subcc" and inst.rd == 0

    def test_inc_dec(self):
        program = assemble(".text\n        inc %o0\n        dec 2, %o1\n")
        inc, dec = (decode(word) for word in program.text)
        assert inc.mnemonic == "add" and inc.imm == 1
        assert dec.mnemonic == "sub" and dec.imm == 2

    def test_clr_not_neg(self):
        program = assemble(".text\n        clr %o0\n        not %o1\n        neg %o2\n")
        clr, notop, neg = (decode(word) for word in program.text)
        assert clr.mnemonic == "or"
        assert notop.mnemonic == "xnor"
        assert neg.mnemonic == "sub" and neg.rs1 == 0

    def test_ret_and_retl(self):
        program = assemble(".text\n        ret\n        retl\n")
        ret, retl = (decode(word) for word in program.text)
        assert ret.mnemonic == "jmpl" and ret.rs1 == 31 and ret.imm == 8
        assert retl.mnemonic == "jmpl" and retl.rs1 == 15 and retl.imm == 8

    def test_ta_is_ticc(self):
        inst = decode(assemble(".text\n        ta 0\n").text[0])
        assert inst.mnemonic == "ticc"

    def test_bare_save_restore(self):
        program = assemble(".text\n        save\n        restore\n")
        save, restore = (decode(word) for word in program.text)
        assert save.mnemonic == "save" and save.rs1 == 0
        assert restore.mnemonic == "restore"

    def test_mov_to_y_register(self):
        inst = decode(assemble(".text\n        mov %o1, %y\n").text[0])
        assert inst.mnemonic == "wr"

    def test_rd_from_y_register(self):
        inst = decode(assemble(".text\n        rd %y, %o2\n").text[0])
        assert inst.mnemonic == "rd" and inst.rd == 10


class TestDataSection:
    def test_word_directive(self):
        program = assemble(".data\nvalues:\n        .word 1, 2, 3\n")
        assert program.data == b"\x00\x00\x00\x01\x00\x00\x00\x02\x00\x00\x00\x03"

    def test_half_and_byte_directives(self):
        program = assemble(".data\nd:\n        .half 0x1234\n        .byte 0xAB, 1\n")
        assert program.data == b"\x12\x34\xab\x01"

    def test_space_directive(self):
        program = assemble(".data\nbuf:\n        .space 8\n")
        assert program.data == bytes(8)

    def test_align_directive_pads(self):
        program = assemble(".data\na:\n        .byte 1\n        .align 4\nb:\n        .word 2\n")
        assert program.symbol("b") - program.symbol("a") == 4

    def test_data_labels_resolve_to_data_base(self):
        program = assemble(".data\ntable:\n        .word 5\n")
        assert program.symbol("table") == DEFAULT_DATA_BASE

    def test_hi_lo_relocations(self):
        source = """
        .text
        sethi %hi(table), %l0
        or %l0, %lo(table), %l0
        .data
table:
        .word 9
"""
        program = assemble(source)
        sethi, orop = (decode(word) for word in program.text)
        assert (sethi.imm << 10) | orop.imm == DEFAULT_DATA_BASE

    def test_label_plus_offset_expression(self):
        source = ".text\n        set table + 8, %l0\n        .data\ntable:\n        .word 1, 2, 3\n"
        program = assemble(source)
        sethi, orop = (decode(word) for word in program.text)
        assert (sethi.imm << 10) | orop.imm == DEFAULT_DATA_BASE + 8

    def test_word_outside_data_section_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".text\n        .word 5\n")

    def test_instruction_in_data_section_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".data\n        add %g1, %g2, %g3\n")

    def test_custom_section_bases(self):
        assembler = Assembler(text_base=0x1000, data_base=0x2000)
        program = assembler.assemble(".text\nstart:\n        nop\n.data\nd:\n        .word 1\n")
        assert program.symbol("start") == 0x1000
        assert program.symbol("d") == 0x2000

    def test_text_bytes_big_endian(self):
        program = assemble(".text\n        add %g1, %g2, %g3\n")
        assert program.text_bytes == program.text[0].to_bytes(4, "big")
