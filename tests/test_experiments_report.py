"""Integration tests for the experiment drivers and report rendering.

These exercise the full pipeline end-to-end (ISS characterisation, RTL
campaigns, correlation and report formatting) at a deliberately tiny scale so
the whole suite stays fast; the benchmark harness runs the same drivers at
meaningful scale.
"""

import pytest

from repro.core import experiments, report
from repro.core.correlation import CorrelationPoint, correlate
from repro.core.experiments import (
    figure3_input_data,
    figure4_iterations,
    figure5_iu_faults,
    figure7_correlation,
    simulation_time_comparison,
    table1_characterization,
)
from repro.rtl.faults import FaultModel


class TestTable1Driver:
    def test_characterization_covers_all_table1_workloads(self):
        rows = table1_characterization(full_size=False)
        assert set(rows) == set(experiments.TABLE1_WORKLOADS)
        for characterization in rows.values():
            assert characterization.total_instructions > 0

    def test_automotive_diversity_band_matches_paper_ordering(self):
        rows = table1_characterization(full_size=False)
        automotive = [rows[name].diversity for name in ("puwmod", "canrdr", "ttsprk", "rspeed")]
        synthetic = [rows[name].diversity for name in ("membench", "intbench")]
        assert min(automotive) > max(synthetic)

    def test_render_table1_contains_measured_and_paper_values(self):
        rows = table1_characterization(workloads=("intbench",), full_size=False)
        text = report.render_table1(rows)
        assert "intbench" in text
        assert "2621" in text  # paper's value shown side by side


@pytest.mark.slow
class TestCampaignDrivers:
    def test_figure3_structure(self):
        result = figure3_input_data(sample_size=8, seed=5)
        assert set(result.subset_a) == {"a2time", "ttsprk", "bitmnp"}
        assert set(result.subset_b) == {"rspeed", "tblook", "basefp"}
        for value in list(result.subset_a.values()) + list(result.subset_b.values()):
            assert 0.0 <= value <= 1.0
        assert result.spread("a") >= 0.0

    def test_figure4_latency_grows_with_iterations(self):
        points = figure4_iterations(iteration_counts=(1, 3), sample_size=10, seed=4)
        assert [p.iterations for p in points] == [1, 3]
        assert points[1].golden_instructions > points[0].golden_instructions
        assert points[1].max_latency_us >= points[0].max_latency_us

    def test_figure5_driver_returns_campaigns(self):
        results = figure5_iu_faults(
            workloads=("intbench",),
            fault_models=[FaultModel.STUCK_AT_1],
            sample_size=10,
            seed=3,
        )
        assert set(results) == {"intbench"}
        campaign = results["intbench"][FaultModel.STUCK_AT_1]
        assert campaign.injections == 10
        text = report.render_campaign_matrix(results, "Figure 5")
        assert "intbench" in text and "Stuck-at-1" in text

    def test_figure7_correlation_positive_coefficient(self):
        result = figure7_correlation(
            workloads=("intbench", "rspeed"),
            include_excerpts=True,
            sample_size=15,
            seed=8,
        )
        assert len(result.points) == 4  # two workloads + two excerpt subsets
        assert result.coefficient > 0
        rendered = report.render_correlation(result)
        assert "paper fit" in rendered

    def test_simulation_time_comparison_shows_iss_faster(self):
        comparison = simulation_time_comparison(workload="intbench", sample_size=5)
        assert comparison.rtl_seconds > 0
        assert comparison.iss_seconds > 0
        assert comparison.speedup > 1.0


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = report.format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_correlation_lists_points_sorted_by_diversity(self):
        result = correlate(
            [
                CorrelationPoint("high", 47, 0.3),
                CorrelationPoint("low", 8, 0.1),
            ]
        )
        rendered = report.render_correlation(result)
        assert rendered.index("low") < rendered.index("high")

    def test_paper_reference_values_present(self):
        assert report.PAPER_TABLE1["rspeed"]["Diversity"] == 47
        assert report.PAPER_FIG7_FIT["r_squared"] == pytest.approx(0.9246)
        assert report.PAPER_SIMULATION_HOURS["rtl"] > report.PAPER_SIMULATION_HOURS["iss"]
