"""Tests for the fault-injection framework (comparison, injector, campaign)."""

import pytest

from repro.faultinjection.campaign import (
    CampaignConfig,
    FaultInjectionCampaign,
    run_cmem_campaign,
    run_iu_campaign,
)
from repro.faultinjection.comparison import FailureClass, compare_runs
from repro.faultinjection.injector import FaultInjector
from repro.faultinjection.models import faults_for_sites
from repro.faultinjection.results import CampaignResult, InjectionOutcome
from repro.isa.assembler import assemble
from repro.isa.instructions import FunctionalUnit
from repro.iss.trace import OffCoreTransaction
from repro.leon3.core import RtlExecutionResult, run_program_rtl
from repro.rtl.faults import FaultModel, PermanentFault
from repro.rtl.sites import FaultSite

from conftest import SMALL_PROGRAM_SOURCE


def _result_with(transactions, cycles=None, halted=True, trap=None, exit_code=0):
    from repro.iss.trace import ExecutionTrace

    return RtlExecutionResult(
        transactions=list(transactions),
        transaction_cycles=list(cycles if cycles is not None else range(len(transactions))),
        trace=ExecutionTrace(),
        instructions=10,
        cycles=100,
        halted=halted,
        exit_code=exit_code,
        trap_kind=trap,
    )


GOLDEN = _result_with(
    [
        OffCoreTransaction("store", 0x100, 1, 4),
        OffCoreTransaction("store", 0x104, 2, 4),
        OffCoreTransaction("store", 0x108, 3, 4),
    ]
)


class TestComparison:
    def test_identical_runs_are_no_effect(self):
        faulty = _result_with(list(GOLDEN.transactions))
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.failure_class is FailureClass.NO_EFFECT
        assert not comparison.is_failure

    def test_wrong_data_detected(self):
        transactions = list(GOLDEN.transactions)
        transactions[1] = OffCoreTransaction("store", 0x104, 99, 4)
        comparison = compare_runs(GOLDEN, _result_with(transactions))
        assert comparison.failure_class is FailureClass.WRONG_DATA
        assert comparison.divergence_index == 1

    def test_wrong_address_detected(self):
        transactions = list(GOLDEN.transactions)
        transactions[0] = OffCoreTransaction("store", 0x200, 1, 4)
        comparison = compare_runs(GOLDEN, _result_with(transactions))
        assert comparison.failure_class is FailureClass.WRONG_ADDRESS

    def test_missing_activity_detected(self):
        comparison = compare_runs(GOLDEN, _result_with(GOLDEN.transactions[:1]))
        assert comparison.failure_class is FailureClass.MISSING_ACTIVITY

    def test_extra_activity_detected(self):
        transactions = list(GOLDEN.transactions) + [OffCoreTransaction("store", 0x10C, 4, 4)]
        comparison = compare_runs(GOLDEN, _result_with(transactions))
        assert comparison.failure_class is FailureClass.EXTRA_ACTIVITY

    def test_trap_classified_when_prefix_matches(self):
        faulty = _result_with(GOLDEN.transactions[:2], trap="memory", exit_code=None)
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.failure_class is FailureClass.TRAP

    def test_hang_classified_for_watchdog(self):
        faulty = _result_with(GOLDEN.transactions[:2], halted=False, exit_code=None)
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.failure_class is FailureClass.HANG

    def test_same_stores_but_trap_still_failure(self):
        faulty = _result_with(GOLDEN.transactions, trap="window", exit_code=None)
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.is_failure
        assert comparison.failure_class is FailureClass.TRAP

    def test_detection_cycle_reported(self):
        transactions = list(GOLDEN.transactions)
        transactions[2] = OffCoreTransaction("store", 0x108, 7, 4)
        faulty = _result_with(transactions, cycles=[10, 20, 30])
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.detection_cycle == 30


class TestComparisonEdgeCases:
    """Boundary behaviour of the comparator: empty streams, hang truncation
    and self-comparison (the NO_EFFECT fixed point)."""

    def test_both_streams_empty_is_no_effect(self):
        golden = _result_with([])
        faulty = _result_with([])
        comparison = compare_runs(golden, faulty)
        assert comparison.failure_class is FailureClass.NO_EFFECT
        assert comparison.divergence_index is None

    def test_empty_golden_with_extra_faulty_activity(self):
        golden = _result_with([])
        faulty = _result_with([OffCoreTransaction("store", 0x100, 1, 4)])
        comparison = compare_runs(golden, faulty)
        assert comparison.failure_class is FailureClass.EXTRA_ACTIVITY
        assert comparison.divergence_index == 0

    def test_empty_faulty_stream_with_normal_exit_is_missing_activity(self):
        comparison = compare_runs(GOLDEN, _result_with([]))
        assert comparison.failure_class is FailureClass.MISSING_ACTIVITY
        assert comparison.divergence_index == 0

    def test_empty_faulty_stream_from_trap_classified_as_trap(self):
        faulty = _result_with([], trap="memory", exit_code=None)
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.failure_class is FailureClass.TRAP

    def test_empty_streams_but_hung_faulty_run_is_hang(self):
        golden = _result_with([])
        faulty = _result_with([], halted=False, exit_code=None)
        comparison = compare_runs(golden, faulty)
        assert comparison.failure_class is FailureClass.HANG

    def test_hang_truncated_stream_detection_falls_back_to_final_cycle(self):
        # A hang that truncates the stream and carries no per-transaction
        # cycle stamps must still report a detection cycle (the final one).
        faulty = _result_with(
            GOLDEN.transactions[:1], cycles=[], halted=False, exit_code=None
        )
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.failure_class is FailureClass.HANG
        assert comparison.divergence_index == 1
        assert comparison.detection_cycle == faulty.cycles

    def test_hang_with_empty_truncated_stream_detects_at_first_index(self):
        faulty = _result_with([], halted=False, exit_code=None)
        comparison = compare_runs(GOLDEN, faulty)
        assert comparison.failure_class is FailureClass.HANG
        assert comparison.divergence_index == 0

    def test_golden_self_comparison_is_no_effect(self):
        comparison = compare_runs(GOLDEN, GOLDEN)
        assert comparison.failure_class is FailureClass.NO_EFFECT
        assert not comparison.is_failure
        assert comparison.divergence_index is None
        assert comparison.detection_cycle is None

    def test_real_golden_run_self_comparison_is_no_effect(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="self_cmp")
        golden = run_program_rtl(program, max_instructions=100_000)
        comparison = compare_runs(golden, golden)
        assert comparison.failure_class is FailureClass.NO_EFFECT


class TestResults:
    def _outcome(self, unit="iu.alu.adder", failure=FailureClass.WRONG_DATA, cycle=50):
        site = FaultSite(net="x", bit=0, unit=unit)
        return InjectionOutcome(
            fault=PermanentFault(site, FaultModel.STUCK_AT_1),
            failure_class=failure,
            detection_cycle=cycle,
        )

    def test_failure_probability(self):
        result = CampaignResult("w", FaultModel.STUCK_AT_1, "iu")
        result.outcomes = [
            self._outcome(),
            self._outcome(failure=FailureClass.NO_EFFECT),
        ]
        assert result.failure_probability == 0.5
        assert result.failures == 1
        assert result.injections == 2

    def test_empty_campaign_probability_is_zero(self):
        assert CampaignResult("w", FaultModel.STUCK_AT_1, "iu").failure_probability == 0.0

    def test_per_unit_breakdown(self):
        result = CampaignResult("w", FaultModel.STUCK_AT_1, "iu")
        result.outcomes = [
            self._outcome(unit="iu.alu.adder"),
            self._outcome(unit="iu.alu.adder", failure=FailureClass.NO_EFFECT),
            self._outcome(unit="iu.alu.shifter", failure=FailureClass.NO_EFFECT),
        ]
        per_unit = result.per_unit_probabilities()
        assert per_unit[FunctionalUnit.ALU_ADDER] == 0.5
        assert per_unit[FunctionalUnit.SHIFTER] == 0.0
        assert result.per_unit_injections()[FunctionalUnit.ALU_ADDER] == 2

    def test_latency_statistics(self):
        result = CampaignResult("w", FaultModel.STUCK_AT_1, "iu")
        result.outcomes = [self._outcome(cycle=80), self._outcome(cycle=160)]
        assert result.max_detection_latency_us == pytest.approx(160 / 80e6 * 1e6)
        assert result.mean_detection_latency_us == pytest.approx(120 / 80e6 * 1e6)

    def test_classification_histogram_and_summary(self):
        result = CampaignResult("w", FaultModel.STUCK_AT_1, "iu")
        result.outcomes = [self._outcome(), self._outcome(failure=FailureClass.NO_EFFECT)]
        histogram = result.classification_histogram()
        assert histogram[FailureClass.WRONG_DATA] == 1
        summary = result.summary()
        assert summary["failure_probability"] == 0.5
        assert summary["fault_model"] == "stuck_at_1"


@pytest.fixture(scope="module")
def small_program_module():
    return assemble(SMALL_PROGRAM_SOURCE, name="small")


class TestInjector:
    def test_golden_run_cached_and_normal(self, small_program_module):
        injector = FaultInjector(small_program_module)
        golden = injector.golden_run()
        assert golden.normal_exit
        assert injector.golden_run() is golden

    def test_faulty_budget_exceeds_golden(self, small_program_module):
        injector = FaultInjector(small_program_module)
        assert injector.faulty_budget() > injector.golden_run().instructions

    def test_run_with_fault_restores_state_for_next_run(self, small_program_module):
        injector = FaultInjector(small_program_module)
        golden = injector.golden_run()
        site = injector.core.netlist.site_for("alu.adder.sum", 0)
        injector.run_with_fault(PermanentFault(site, FaultModel.STUCK_AT_1))
        # A subsequent clean faulty run with a harmless fault must match golden.
        harmless_site = injector.core.netlist.site_for("alu.div.quotient", 0)
        clean = injector.run_with_fault(PermanentFault(harmless_site, FaultModel.STUCK_AT_1))
        assert len(clean.transactions) == len(golden.transactions)
        assert all(a.matches(b) for a, b in zip(golden.transactions, clean.transactions))

    def test_multi_fault_injection_supported(self, small_program_module):
        injector = FaultInjector(small_program_module)
        sites = [
            injector.core.netlist.site_for("alu.adder.sum", 0),
            injector.core.netlist.site_for("alu.adder.sum", 1),
        ]
        faults = faults_for_sites(sites, FaultModel.STUCK_AT_1)
        result = injector.run_with_faults(faults)
        assert result.instructions > 0


class TestCampaign:
    def test_campaign_runs_and_reports(self, small_program_module):
        config = CampaignConfig(
            unit_scope="iu", sample_size=12, fault_models=[FaultModel.STUCK_AT_1], seed=1
        )
        campaign = FaultInjectionCampaign(small_program_module, config)
        results = campaign.run()
        result = results[FaultModel.STUCK_AT_1]
        assert result.injections == 12
        assert 0.0 <= result.failure_probability <= 1.0
        assert result.unit_scope == "iu"
        assert result.simulation_seconds > 0

    def test_same_sites_reused_across_models(self, small_program_module):
        config = CampaignConfig(
            unit_scope="iu",
            sample_size=6,
            fault_models=[FaultModel.STUCK_AT_1, FaultModel.STUCK_AT_0],
            seed=3,
        )
        results = FaultInjectionCampaign(small_program_module, config).run()
        sites_sa1 = [o.fault.site for o in results[FaultModel.STUCK_AT_1].outcomes]
        sites_sa0 = [o.fault.site for o in results[FaultModel.STUCK_AT_0].outcomes]
        assert sites_sa1 == sites_sa0

    def test_sampling_is_reproducible(self, small_program_module):
        config = CampaignConfig(unit_scope="iu", sample_size=8, seed=9)
        first = FaultInjectionCampaign(small_program_module, config).select_sites()
        second = FaultInjectionCampaign(small_program_module, config).select_sites()
        assert first == second

    def test_scope_restricts_sites(self, small_program_module):
        config = CampaignConfig(unit_scope="cmem", sample_size=10, seed=2)
        campaign = FaultInjectionCampaign(small_program_module, config)
        assert all(site.unit.startswith("cmem") for site in campaign.select_sites())

    def test_convenience_wrappers(self, small_program_module):
        iu = run_iu_campaign(small_program_module, sample_size=5,
                             fault_models=[FaultModel.STUCK_AT_1])
        cmem = run_cmem_campaign(small_program_module, sample_size=5,
                                 fault_models=[FaultModel.STUCK_AT_1])
        assert iu[FaultModel.STUCK_AT_1].unit_scope == "iu"
        assert cmem[FaultModel.STUCK_AT_1].unit_scope == "cmem"
