"""Bit-identity and transparency of the lockstep pack runtime.

The contract (mirroring ``test_checkpoint.py``): a pack of N faulty
replicas executed through the shared fetch/decode front end of
:mod:`repro.engine.lockstep` yields, for every replica, a result (and on
request a final architectural state) bit-identical to running that fault
alone — whether the replica never diverges, rides the pack with a live
delta, re-converges in pack, or demotes to the scalar path and splices.
The campaign layers must preserve all of it: ``lockstep_width`` is
result-transparent (serial == process == lockstep, and it is excluded from
the campaign store key).
"""

import random
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.backend import IssBackend, Leon3RtlBackend, watchdog_budget
from repro.engine.campaign import CampaignConfig, CampaignEngine
from repro.engine.checkpoint import assert_run_results_identical
from repro.engine.lockstep import PROPAGATION_BUDGET, make_pack_runner
from repro.engine.schedulers import group_packs
from repro.iss.fastpath import FastEmulator
from repro.iss.memory import Memory
from repro.rtl.faults import FaultModel, PermanentFault, TransientFault
from repro.rtl.sites import FaultSite
from repro.workloads import all_workloads, build_program
from repro.workloads.builder import assemble_workload

MAX_INSTRUCTIONS = 400_000

#: Workloads exercised by the exhaustive registry sweep.
REGISTRY = sorted(all_workloads())

#: Replicas per pack in the sweep — wide enough that one pack mixes
#: resolution paths (riders next to demotions next to convergences).
WIDTH = 8

#: Pack statistics accumulated across the registry sweep, so the
#: path-coverage test below can assert every resolution path actually ran.
SWEEP_STATS = Counter()

#: %g0's cell in the architectural register file (reads short-circuit to 0,
#: so an upset there is invisible) and %o0's (read by nearly everything).
G0_SITE = FaultSite("regfile", 3, "arch.regfile", index=0)
O0_SITE = FaultSite("regfile", 0, "arch.regfile", index=8)


def _prepared_backend(program):
    backend = IssBackend()
    backend.prepare(program)
    return backend


def from_reset_final_state(program, backend, fault, budget):
    """Final architectural state of an untimed from-reset faulty run."""
    emulator = FastEmulator(memory=Memory())
    emulator.collect_raw_counts = True
    emulator.load_program(program)
    base_pages = {i: bytes(p) for i, p in emulator.memory._pages.items()}
    arch = backend._to_architectural(fault) if fault is not None else None
    emulator.restore_state(emulator.capture_state(base_pages), base_pages, 0, arch)
    emulator.run(max_instructions=budget)
    return emulator.capture_state(base_pages)


def _sweep_faults(backend, horizon, name, sites=3, windows=2):
    """The fault mix of one sweep workload: sampled transients, the %g0/%o0
    specials, and sticky (permanent) faults — same recipe as the
    checkpointed-runtime sweep, plus the pack-specific corners."""
    rng = random.Random(name)
    faults = []
    for site in backend.sites.sample(sites, seed=5, storage_only=True):
        for _ in range(windows):
            faults.append(
                TransientFault(site, start_cycle=rng.randrange(horizon), duration=1)
            )
    faults.append(TransientFault(G0_SITE, start_cycle=horizon // 2, duration=1))
    faults.append(TransientFault(O0_SITE, start_cycle=horizon // 3, duration=1))
    faults.append(TransientFault(O0_SITE, start_cycle=0, duration=1))
    faults.append(PermanentFault(O0_SITE, FaultModel.STUCK_AT_1))
    faults.append(PermanentFault(G0_SITE, FaultModel.OPEN_LINE))
    return faults


@pytest.mark.parametrize("workload", REGISTRY)
def test_pack_bit_identity_across_registry(workload):
    """Every replica of every pack == the same fault run alone, on every
    observable plus the final architectural state."""
    program = build_program(workload)
    backend = _prepared_backend(program)
    golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
    assert golden.normal_exit
    budget = watchdog_budget(golden.instructions)
    runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
    pack_runner = runner.pack_runner(WIDTH)
    faults = _sweep_faults(backend, golden.instructions, workload)
    arch = [backend._to_architectural(fault) for fault in faults]
    outcomes = []
    for start in range(0, len(arch), WIDTH):
        outcomes.extend(
            pack_runner.run_pack(
                arch[start : start + WIDTH], budget, capture_final_state=True
            )
        )
    for fault, outcome in zip(faults, outcomes):
        reference = backend.run(max_instructions=budget, faults=[fault])
        assert_run_results_identical(reference, outcome.result)
        assert outcome.final_state == from_reset_final_state(
            program, backend, fault, budget
        )
    SWEEP_STATS.update(
        demotions=pack_runner.demotions,
        demoted_splices=pack_runner.demoted_splices,
        in_pack_convergences=pack_runner.in_pack_convergences,
        golden_riders=pack_runner.golden_riders,
        propagations=pack_runner.propagations,
    )


def test_sweep_covered_every_resolution_path():
    """The registry sweep must actually exercise demotion, demoted-splice
    rejoin, in-pack convergence, golden riding and delta propagation —
    otherwise the bit-identity assertions above prove less than they claim."""
    if not SWEEP_STATS:
        pytest.skip("registry sweep did not run")
    # demoted_splices needs a denser window sample to show up — it has its
    # own dedicated coverage test below.
    for path in (
        "demotions",
        "in_pack_convergences",
        "golden_riders",
        "propagations",
    ):
        assert SWEEP_STATS[path] > 0, f"sweep never took the {path} path"


class TestWidthOne:
    def test_width_one_pack_equals_scalar(self):
        """A pack of one is the scalar path: same results, fault by fault."""
        program = build_program("rspeed")
        backend = _prepared_backend(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        budget = watchdog_budget(golden.instructions)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        solo = runner.pack_runner(1)
        horizon = golden.instructions
        for site in backend.sites.sample(2, seed=11, storage_only=True):
            fault = TransientFault(site, start_cycle=horizon // 2, duration=1)
            (outcome,) = solo.run_pack(
                [backend._to_architectural(fault)], budget
            )
            assert_run_results_identical(
                runner.run_transient(fault, budget), outcome.result
            )

    def test_make_pack_runner_gates(self):
        """Width 1, non-ISS backends and no-snapshot interpreters all fall
        back to the scalar path (``None``)."""
        program = build_program("rspeed")
        backend = _prepared_backend(program)
        assert make_pack_runner(backend, MAX_INSTRUCTIONS, 1) is None
        reference = IssBackend(fast=False)
        reference.prepare(program)
        assert make_pack_runner(reference, MAX_INSTRUCTIONS, 4) is None
        rtl = Leon3RtlBackend()
        rtl.prepare(program)
        assert make_pack_runner(rtl, MAX_INSTRUCTIONS, 4) is None

    def test_pack_runner_donates_the_scalar_ladder(self):
        program = build_program("rspeed")
        backend = _prepared_backend(program)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        pack_runner = make_pack_runner(backend, MAX_INSTRUCTIONS, 4, runner=runner)
        assert pack_runner is not None
        assert pack_runner._ladder is runner.ladder()

    def test_oversized_pack_is_refused(self):
        program = build_program("rspeed")
        backend = _prepared_backend(program)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        pack_runner = runner.pack_runner(2)
        fault = backend._to_architectural(
            TransientFault(O0_SITE, start_cycle=1, duration=1)
        )
        with pytest.raises(ValueError, match="exceeds lockstep width"):
            pack_runner.run_pack([fault] * 3, 1000)


class TestResolutionPaths:
    def test_dead_cell_flip_rides_to_golden(self):
        """A %g0 upset is architecturally invisible: the replica must resolve
        to the golden result without ever demoting."""
        program = build_program("rspeed")
        backend = _prepared_backend(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        budget = watchdog_budget(golden.instructions)
        pack_runner = backend.checkpoint_runner(MAX_INSTRUCTIONS).pack_runner(2)
        fault = TransientFault(
            G0_SITE, start_cycle=golden.instructions // 2, duration=1
        )
        (outcome,) = pack_runner.run_pack(
            [backend._to_architectural(fault)], budget
        )
        assert outcome.resolution == "golden"
        assert pack_runner.demotions == 0
        assert_run_results_identical(golden, outcome.result)

    def test_store_data_divergence_rides_pack(self):
        """A replica whose corruption reaches memory through a store — same
        address, divergent data — must keep riding the pack (patched
        transaction history, live memory delta) and still produce the exact
        from-reset result, transactions included."""
        # 8 iterations: the corrupted accumulator feeds ~5 instructions per
        # loop, comfortably inside PROPAGATION_BUDGET, so the replica is
        # never demoted for cost.
        program = assemble_workload(
            "storeloop",
            "\n".join(
                [
                    "        .text",
                    "start:",
                    "        set     buf, %l0",
                    "        or      %g0, 8, %l1",
                    "        or      %g0, 0, %l2",
                    "        or      %g0, 0, %l4",
                    "loop:",
                    "        add     %l2, 3, %l2",
                    "        st      %l2, [%l0]",
                    "        ld      [%l0], %l3",
                    "        add     %l3, %l4, %l4",
                    "        subcc   %l1, 1, %l1",
                    "        bne     loop",
                    "        nop",
                    "        st      %l4, [%l0]",
                    "        ta      0",
                ]
            ),
            "buf:\n        .word   0",
        )
        backend = _prepared_backend(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        assert golden.normal_exit
        budget = watchdog_budget(golden.instructions)
        pack_runner = backend.checkpoint_runner(MAX_INSTRUCTIONS).pack_runner(2)
        # Flip a bit of %l2 (cell 18) mid-run: every later store writes a
        # divergent word, every later load reads it back.
        fault = TransientFault(
            FaultSite("regfile", 2, "arch.regfile", index=18),
            start_cycle=golden.instructions // 2,
            duration=1,
        )
        (outcome,) = pack_runner.run_pack(
            [backend._to_architectural(fault)], budget, capture_final_state=True
        )
        assert outcome.resolution == "rode_pack"
        assert pack_runner.golden_riders == 1
        assert outcome.result.transactions != golden.transactions
        reference = backend.run(max_instructions=budget, faults=[fault])
        assert_run_results_identical(reference, outcome.result)
        assert outcome.final_state == from_reset_final_state(
            program, backend, fault, budget
        )

    def test_demoted_replica_splices_back_onto_the_golden_tail(self):
        """A demoted replica whose scalar tail digest-matches a golden rung
        must rejoin (``"spliced"``) — and still equal the from-reset run.
        bitmnp's bit-shuffling kernel absorbs many %o0 upsets only *after*
        they have already forked control flow, which is exactly the
        demote-then-rejoin shape."""
        program = build_program("bitmnp")
        backend = _prepared_backend(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        budget = watchdog_budget(golden.instructions)
        runner = backend.checkpoint_runner(MAX_INSTRUCTIONS)
        pack_runner = runner.pack_runner(WIDTH)
        from repro.engine.jobs import plan_transient_jobs

        jobs = plan_transient_jobs(
            backend.sites.sample(8, seed=2015, storage_only=True),
            horizon=golden.instructions, windows=8, duration=1,
            seed=2015, workload="bitmnp",
        )
        outcomes = []
        for start in range(0, len(jobs), WIDTH):
            outcomes.extend(
                pack_runner.run_pack(
                    [
                        backend._to_architectural(job.fault)
                        for job in jobs[start : start + WIDTH]
                    ],
                    budget,
                )
            )
        assert pack_runner.demoted_splices > 0
        assert any(outcome.resolution == "spliced" for outcome in outcomes)
        for job, outcome in zip(jobs, outcomes):
            assert_run_results_identical(
                runner.run_transient(job.fault, budget), outcome.result
            )

    def test_propagation_budget_demotes_exactly(self):
        """A replica whose delta feeds nearly every instruction demotes once
        it exhausts :data:`PROPAGATION_BUDGET` — and demotion is exact: the
        result still matches the from-reset run bit for bit."""
        assert PROPAGATION_BUDGET > 0
        # 64 loop iterations, each reading the corrupted accumulator once:
        # the replica is touched well past the budget with no branch or
        # memory divergence, so only the cost valve can demote it.
        program = assemble_workload(
            "accloop",
            "\n".join(
                [
                    "        .text",
                    "start:",
                    "        set     buf, %l0",
                    "        or      %g0, 64, %l1",
                    "        or      %g0, 1, %l2",
                    "        or      %g0, 0, %l4",
                    "loop:",
                    "        add     %l2, %l4, %l4",
                    "        subcc   %l1, 1, %l1",
                    "        bne     loop",
                    "        nop",
                    "        st      %l4, [%l0]",
                    "        ta      0",
                ]
            ),
            "buf:\n        .word   0",
        )
        backend = _prepared_backend(program)
        golden = backend.run(max_instructions=MAX_INSTRUCTIONS)
        assert golden.normal_exit
        budget = watchdog_budget(golden.instructions)
        pack_runner = backend.checkpoint_runner(MAX_INSTRUCTIONS).pack_runner(2)
        # Flip a bit of %l2 (cell 18) just before the loop: the delta feeds
        # every iteration's accumulate and survives to the final store.
        fault = TransientFault(
            FaultSite("regfile", 4, "arch.regfile", index=18),
            start_cycle=6, duration=1,
        )
        (outcome,) = pack_runner.run_pack(
            [backend._to_architectural(fault)], budget
        )
        assert outcome.resolution == "demoted"
        assert pack_runner.demotions == 1
        assert_run_results_identical(
            backend.run(max_instructions=budget, faults=[fault]), outcome.result
        )


class TestCampaignTransparency:
    """serial == process == lockstep, at the campaign level."""

    BASE = {
        "unit_scope": "arch.regfile",
        "sample_size": 4,
        "seed": 3,
        "transient_windows": 2,
    }

    @staticmethod
    def _outcomes(results):
        return {
            model: [(o.fault, o.failure_class) for o in result.outcomes]
            for model, result in results.items()
        }

    def test_transient_campaign_scalar_vs_lockstep_vs_process(self):
        program = build_program("intbench")
        scalar = CampaignEngine(
            program, CampaignConfig(**self.BASE), backend_factory=IssBackend
        ).run()
        packed = CampaignEngine(
            program,
            CampaignConfig(**self.BASE, lockstep_width=4),
            backend_factory=IssBackend,
        ).run()
        process = CampaignEngine(
            program,
            CampaignConfig(
                **self.BASE, lockstep_width=4, n_workers=2, scheduler="process"
            ),
            backend_factory=IssBackend,
        ).run()
        assert self._outcomes(scalar) == self._outcomes(packed)
        assert self._outcomes(scalar) == self._outcomes(process)

    def test_permanent_campaign_scalar_vs_lockstep(self):
        program = build_program("rspeed")
        base = {"unit_scope": "arch.regfile", "sample_size": 3, "seed": 7}
        scalar = CampaignEngine(
            program, CampaignConfig(**base), backend_factory=IssBackend
        ).run()
        packed = CampaignEngine(
            program,
            CampaignConfig(**base, lockstep_width=3),
            backend_factory=IssBackend,
        ).run()
        assert self._outcomes(scalar) == self._outcomes(packed)

    def test_lockstep_width_validation(self):
        with pytest.raises(ValueError, match="lockstep_width"):
            CampaignConfig(lockstep_width=0)

    def test_group_packs_respects_width_and_order(self):
        jobs = CampaignEngine(
            build_program("intbench"),
            CampaignConfig(**self.BASE),
            backend_factory=IssBackend,
        ).plan().jobs
        packs = group_packs(jobs, 3)
        assert [job for pack in packs for job in pack] == list(jobs)
        assert all(len(pack) <= 3 for pack in packs)


class TestStoreTransparency:
    def test_lockstep_width_is_not_part_of_the_key(self):
        """This is the exact key PR 2..5 stored rspeed/sample8/seed7
        campaigns under; a lockstep campaign must address the same record."""
        program = build_program("rspeed")
        pinned = "5acce84097c754ea00e3c4196e2da8a32df18b74f5e12fa660f98fb2d2d01e17"
        scalar = CampaignEngine(program, CampaignConfig(sample_size=8, seed=7))
        packed = CampaignEngine(
            program, CampaignConfig(sample_size=8, seed=7, lockstep_width=4)
        )
        assert scalar.store_key() == pinned
        assert packed.store_key() == pinned

    def test_lockstep_campaign_serves_and_populates_the_scalar_store(
        self, tmp_path
    ):
        """A lockstep campaign populates the store a scalar campaign reads
        (and vice versa): same key, pure cache hits both ways."""
        from repro.store import CampaignStore

        program = build_program("intbench")
        store_path = str(tmp_path / "campaigns.sqlite")
        base = {
            "unit_scope": "arch.regfile", "sample_size": 4, "seed": 3,
            "transient_windows": 2, "store_path": store_path,
        }
        packed = CampaignEngine(
            program,
            CampaignConfig(**base, lockstep_width=4),
            backend_factory=IssBackend,
        ).run()[FaultModel.TRANSIENT]
        scalar = CampaignEngine(
            program, CampaignConfig(**base), backend_factory=IssBackend
        ).run()[FaultModel.TRANSIENT]
        assert [(o.fault, o.failure_class) for o in packed.outcomes] == [
            (o.fault, o.failure_class) for o in scalar.outcomes
        ]
        with CampaignStore(store_path) as store:
            counters = store.counters()
            assert counters["campaign_hits"] == 1
            assert counters["jobs_executed"] == 8
            assert counters["jobs_cached"] == 8


class _Env:
    """One prepared workload shared by every Hypothesis example."""

    def __init__(self, name):
        self.program = build_program(name)
        self.backend = _prepared_backend(self.program)
        self.golden = self.backend.run(max_instructions=MAX_INSTRUCTIONS)
        self.budget = watchdog_budget(self.golden.instructions)
        self.runner = self.backend.checkpoint_runner(MAX_INSTRUCTIONS)
        self.pack_runner = self.runner.pack_runner(6)
        self.solo_runner = self.runner.pack_runner(1)


_ENVS = {}


def _env(name="canrdr"):
    if name not in _ENVS:
        _ENVS[name] = _Env(name)
    return _ENVS[name]


_FAULTS = st.builds(
    lambda cell, bit, frac: (cell, bit, frac),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=31),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def _to_transient(env, spec):
    cell, bit, frac = spec
    start = min(int(frac * env.golden.instructions), env.golden.instructions - 1)
    return TransientFault(
        FaultSite("regfile", bit, "arch.regfile", index=cell),
        start_cycle=start,
        duration=1,
    )


class TestProperties:
    """Hypothesis: the pack is observationally equivalent to scalar runs."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(specs=st.lists(_FAULTS, min_size=2, max_size=6))
    def test_pack_of_n_equals_n_scalar_runs(self, specs):
        env = _env()
        faults = [_to_transient(env, spec) for spec in specs]
        outcomes = env.pack_runner.run_pack(
            [env.backend._to_architectural(fault) for fault in faults],
            env.budget,
        )
        for fault, outcome in zip(faults, outcomes):
            assert_run_results_identical(
                env.runner.run_transient(fault, env.budget), outcome.result
            )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=_FAULTS)
    def test_width_one_equals_scalar(self, spec):
        env = _env()
        fault = _to_transient(env, spec)
        (outcome,) = env.solo_runner.run_pack(
            [env.backend._to_architectural(fault)], env.budget
        )
        assert_run_results_identical(
            env.runner.run_transient(fault, env.budget), outcome.result
        )

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        bit=st.integers(min_value=0, max_value=31),
        frac=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    )
    def test_demote_then_rejoin_is_transparent(self, bit, frac):
        """Forcing divergence on an actively-read register (demotion, then a
        possible splice back onto the golden tail) never changes the
        result."""
        env = _env()
        fault = _to_transient(env, (8, bit, frac))
        outcomes = env.pack_runner.run_pack(
            [env.backend._to_architectural(fault)], env.budget
        )
        assert_run_results_identical(
            env.runner.run_transient(fault, env.budget), outcomes[0].result
        )
