"""Tests for the RTL netlist substrate (nets, arrays, fault application)."""

import pytest

from repro.rtl.faults import FaultModel, PermanentFault
from repro.rtl.netlist import Netlist, NetlistError
from repro.rtl.sites import FaultSite


@pytest.fixture
def netlist():
    nl = Netlist()
    nl.declare("alu.sum", 32, "iu.alu.adder")
    nl.declare("ctrl.bit", 1, "iu.decode")
    nl.declare_array("cache.data", 32, 16, "cmem.dcache")
    return nl


class TestNets:
    def test_drive_and_sample(self, netlist):
        assert netlist.drive("alu.sum", 0x1234) == 0x1234
        assert netlist.sample("alu.sum") == 0x1234

    def test_drive_masks_to_width(self, netlist):
        assert netlist.drive("ctrl.bit", 2) == 0
        assert netlist.drive("ctrl.bit", 3) == 1

    def test_duplicate_declaration_raises(self, netlist):
        with pytest.raises(NetlistError):
            netlist.declare("alu.sum", 32, "iu.alu.adder")

    def test_unknown_net_raises(self, netlist):
        with pytest.raises(NetlistError):
            netlist.sample("missing.net")

    def test_unsupported_width_raises(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.declare("too.wide", 65, "iu")

    def test_reset_state_clears_values_but_not_faults(self, netlist):
        fault = PermanentFault(netlist.site_for("alu.sum", 0), FaultModel.STUCK_AT_1)
        netlist.inject(fault)
        netlist.drive("alu.sum", 0x10)
        netlist.reset_state()
        assert netlist.sample("alu.sum") == 0
        assert netlist.active_faults() == [fault]


class TestNetFaults:
    def test_stuck_at_one_forces_bit(self, netlist):
        site = netlist.site_for("alu.sum", 4)
        netlist.inject(PermanentFault(site, FaultModel.STUCK_AT_1))
        assert netlist.drive("alu.sum", 0) == 0x10

    def test_stuck_at_zero_forces_bit(self, netlist):
        site = netlist.site_for("alu.sum", 0)
        netlist.inject(PermanentFault(site, FaultModel.STUCK_AT_0))
        assert netlist.drive("alu.sum", 0xFF) == 0xFE

    def test_open_line_retains_previous_value(self, netlist):
        site = netlist.site_for("alu.sum", 0)
        netlist.inject(PermanentFault(site, FaultModel.OPEN_LINE))
        assert netlist.drive("alu.sum", 1) == 0      # previous value was 0
        netlist.clear_faults()
        netlist.drive("alu.sum", 1)                  # latch a 1 without fault
        netlist.inject(PermanentFault(site, FaultModel.OPEN_LINE))
        assert netlist.drive("alu.sum", 0) == 1      # bit keeps the old 1

    def test_multiple_faults_on_same_net(self, netlist):
        netlist.inject(PermanentFault(netlist.site_for("alu.sum", 0), FaultModel.STUCK_AT_1))
        netlist.inject(PermanentFault(netlist.site_for("alu.sum", 1), FaultModel.STUCK_AT_1))
        assert netlist.drive("alu.sum", 0) == 3

    def test_fault_bit_out_of_range_rejected(self, netlist):
        with pytest.raises(NetlistError):
            netlist.site_for("ctrl.bit", 3)

    def test_clear_faults(self, netlist):
        netlist.inject(PermanentFault(netlist.site_for("alu.sum", 0), FaultModel.STUCK_AT_1))
        netlist.clear_faults()
        assert netlist.drive("alu.sum", 0) == 0
        assert netlist.active_faults() == []

    def test_unfaulted_nets_unaffected(self, netlist):
        netlist.inject(PermanentFault(netlist.site_for("alu.sum", 0), FaultModel.STUCK_AT_1))
        assert netlist.drive("ctrl.bit", 0) == 0


class TestStorageArrays:
    def test_read_write_roundtrip(self, netlist):
        array = netlist.array("cache.data")
        array.write(3, 0xABCD)
        assert array.read(3) == 0xABCD

    def test_cell_fault_applies_on_read(self, netlist):
        array = netlist.array("cache.data")
        site = netlist.site_for("cache.data", 7, index=2)
        netlist.inject(PermanentFault(site, FaultModel.STUCK_AT_1))
        array.write(2, 0)
        assert array.read(2) == 0x80

    def test_cell_fault_does_not_affect_other_cells(self, netlist):
        array = netlist.array("cache.data")
        site = netlist.site_for("cache.data", 0, index=5)
        netlist.inject(PermanentFault(site, FaultModel.STUCK_AT_0))
        array.write(4, 0xFF)
        assert array.read(4) == 0xFF

    def test_array_bulk_load(self, netlist):
        array = netlist.array("cache.data")
        array.load([1, 2, 3])
        assert [array.read(i) for i in range(3)] == [1, 2, 3]

    def test_array_load_overflow_raises(self, netlist):
        with pytest.raises(NetlistError):
            netlist.array("cache.data").load([0] * 17)

    def test_invalid_cell_index_rejected(self, netlist):
        with pytest.raises(NetlistError):
            netlist.site_for("cache.data", 0, index=16)

    def test_array_reset_clears_data(self, netlist):
        array = netlist.array("cache.data")
        array.write(0, 9)
        array.reset()
        assert array.read(0) == 0

    def test_inject_via_netlist_routes_to_array(self, netlist):
        site = FaultSite(net="cache.data", bit=0, unit="cmem.dcache", index=1)
        netlist.inject(PermanentFault(site, FaultModel.STUCK_AT_1))
        assert netlist.array("cache.data").read(1) == 1


class TestFaultModels:
    def test_fault_model_labels(self):
        assert FaultModel.STUCK_AT_1.label == "Stuck-at-1"
        assert FaultModel.STUCK_AT_0.label == "Stuck-at-0"
        assert FaultModel.OPEN_LINE.label == "Open line"

    def test_describe_mentions_site_and_model(self):
        site = FaultSite(net="alu.sum", bit=3, unit="iu.alu.adder")
        fault = PermanentFault(site, FaultModel.STUCK_AT_0)
        text = fault.describe()
        assert "alu.sum" in text and "Stuck-at-0" in text and "bit3" in text
