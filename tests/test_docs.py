"""Documentation health: internal links resolve, packages are documented.

Run by the tier-1 suite and by the dedicated CI docs job.  Two guarantees:

* every relative link in the markdown documentation (``docs/``, README,
  ARCHITECTURE) points at a file that exists, so the docs cannot silently
  rot as files move, and
* every ``repro`` package states its role in a module docstring — the
  contract the docs/index.md layer map leans on.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose relative links must resolve.
DOC_FILES = sorted(
    list((REPO_ROOT / "docs").glob("*.md"))
    + [REPO_ROOT / "README.md", REPO_ROOT / "ARCHITECTURE.md"]
)

#: Every repro package (docs/index.md documents this exact set).
PACKAGES = (
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.engine",
    "repro.faultinjection",
    "repro.isa",
    "repro.iss",
    "repro.leon3",
    "repro.lint",
    "repro.obs",
    "repro.rtl",
    "repro.store",
    "repro.workloads",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(text):
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_docs_directory_is_populated():
    names = {path.name for path in (REPO_ROOT / "docs").glob("*.md")}
    assert {"index.md", "performance.md", "figures.md", "store.md"} <= names


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_internal_links_resolve(doc):
    broken = []
    for target in _relative_links(doc.read_text(encoding="utf-8")):
        if not target:
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)}: broken links {broken}"


@pytest.mark.parametrize("package", PACKAGES)
def test_every_package_has_a_docstring(package):
    module = importlib.import_module(package)
    doc = (module.__doc__ or "").strip()
    assert doc, f"{package}/__init__.py has no module docstring"
    # A layer description, not a placeholder: at least one full sentence.
    assert len(doc) > 60, f"{package} docstring is too thin to describe the layer"


def test_index_mentions_every_package():
    index = (REPO_ROOT / "docs" / "index.md").read_text(encoding="utf-8")
    for package in PACKAGES:
        if package == "repro":
            continue
        assert f"repro/{package.split('.', 1)[1]}" in index, (
            f"docs/index.md layer map is missing {package}"
        )
