"""Fast LEON3 cycle engine: bit-identity contract, fault compilation, plumbing.

The fast cycle engine's whole value proposition is that it is *not* a second
implementation of the structural model from the campaign's point of view:
every observable must match the reference core bit for bit.  These tests
enforce that contract across the workload registry, fault-free and under
injected faults (storage-array sites on the fast engine, net sites through
the reference fallback), plus the specialisation-cache invalidation rules,
the backend/config/store plumbing of the ``fast`` flag, and the
result-transparency fix the contract depends on.
"""

import functools

import pytest

from conftest import SMALL_PROGRAM_SOURCE

from repro.engine import CampaignConfig, CampaignEngine, Leon3RtlBackend
from repro.engine.backend import watchdog_budget
from repro.faultinjection.campaign import run_iu_campaign
from repro.isa.assembler import assemble
from repro.leon3.core import Leon3Core
from repro.leon3.fastcore import (
    Leon3FastCore,
    assert_rtl_results_identical,
    run_program_fast_rtl,
    verify_rtl_bit_identity,
)
from repro.rtl.faults import ALL_FAULT_MODELS, FaultModel, PermanentFault
from repro.rtl.sites import FaultSite
from repro.store.keys import backend_identity
from repro.workloads.registry import all_workloads, build_program


def _sampled_faults():
    """Site x model pairs drawn from both campaign scopes plus edge sites."""
    universe = Leon3Core().sites
    sites = universe.sample(6, units=["iu"], seed=5)
    sites += universe.sample(6, units=["cmem"], seed=7)
    # Handpicked sites covering every native array and both fallback paths.
    sites += [
        FaultSite(net="rf.cells", bit=3, unit="iu.regfile", index=38),  # %sp cell
        FaultSite(net="icache.data", bit=13, unit="cmem.icache", index=17),
        FaultSite(net="icache.tags", bit=2, unit="cmem.icache", index=1),
        FaultSite(net="dcache.valid", bit=0, unit="cmem.dcache", index=4),
        FaultSite(net="psr.icc", bit=2, unit="iu.psr"),  # net -> fallback
        FaultSite(net="alu.adder.sum", bit=0, unit="iu.alu.adder"),  # net -> fallback
    ]
    pairs = []
    for index, site in enumerate(sites):
        # Rotate through the three models so every model sees every site kind
        # without tripling the runtime.
        model = ALL_FAULT_MODELS[index % len(ALL_FAULT_MODELS)]
        pairs.append(pytest.param(
            PermanentFault(site=site, model=model),
            id=f"{model.value}-{site.net}"
               f"{'' if site.index is None else f'[{site.index}]'}b{site.bit}",
        ))
    return pairs


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(all_workloads()))
    def test_every_registered_workload_fault_free(self, name):
        program = all_workloads()[name].build()
        reference, fast = verify_rtl_bit_identity(program, max_instructions=400_000)
        assert reference.normal_exit

    @pytest.mark.parametrize("fault", _sampled_faults())
    def test_under_injected_faults(self, fault):
        program = build_program("rspeed")
        verify_rtl_bit_identity(program, faults=[fault], max_instructions=8_000)

    @pytest.mark.parametrize("fault", [
        PermanentFault(
            site=FaultSite(net="dcache.data", bit=7, unit="cmem.dcache", index=40),
            model=FaultModel.STUCK_AT_1,
        ),
        PermanentFault(
            site=FaultSite(net="rf.cells", bit=31, unit="iu.regfile", index=24),
            model=FaultModel.OPEN_LINE,
        ),
    ], ids=["dcache-data", "rf-open-line"])
    @pytest.mark.parametrize("name", ["membench", "intbench"])
    def test_injected_faults_on_other_workloads(self, name, fault):
        program = build_program(name)
        verify_rtl_bit_identity(program, faults=[fault], max_instructions=8_000)

    def test_watchdog_truncated_runs(self):
        program = build_program("rspeed")
        for budget in (1, 37, 500):
            reference, fast = verify_rtl_bit_identity(
                program, max_instructions=budget
            )
            assert not reference.halted  # budget exhaustion, not a trap

    def test_detailed_trace_runs_identically(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        reference, fast = verify_rtl_bit_identity(program, detailed_trace=True)
        assert fast.trace.records  # detailed records were produced and compared

    def test_non_default_cache_geometry(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        verify_rtl_bit_identity(
            program, icache_lines=4, dcache_lines=8, words_per_line=4
        )

    def test_run_program_fast_matches_reference_helper(self):
        from repro.leon3.core import run_program_rtl

        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        reference = run_program_rtl(program)
        fast = run_program_fast_rtl(program)
        assert fast.transactions == reference.transactions
        assert fast.trace == reference.trace
        assert fast.exit_code == reference.exit_code
        assert fast.cycles == reference.cycles


class TestTrapCorners:
    """Every trap path of the pipeline, asserted bit-identical."""

    @pytest.mark.parametrize("body, expected_kind", [
        ("        ta      1\n", "software_trap"),
        ("        set     bogus, %o0\n        jmpl    %o0, 0, %g0\n"
         "        nop\n", "illegal_instruction"),  # jump into undecodable data
        ("        set     3, %o0\n        jmpl    %o0, 0, %g0\n        nop\n",
         "memory"),  # misaligned jump target
        ("        mov     0, %o1\n        udiv    %o0, %o1, %o2\n",
         "division_by_zero"),
        ("        " + "save    %sp, -64, %sp\n        " * 9 + "nop\n", "window"),
        ("        restore\n", "window"),
        ("        ld      [%g0 + 1], %o0\n", None),  # decodes, misaligned access
    ], ids=["software-trap", "illegal", "jmpl-misaligned", "div-zero",
            "save-overflow", "restore-underflow", "misaligned-load"])
    def test_trap_kinds_match(self, body, expected_kind):
        source = (
            "        .text\n" + body + "        ta      0\n"
            "        .data\nbogus:\n        .word   0x01800000\n"  # op2=6
        )
        program = assemble(source, name="trap-corner")
        reference, fast = verify_rtl_bit_identity(program, max_instructions=100)
        if expected_kind is not None:
            assert reference.trap_kind == expected_kind
        else:
            assert reference.trap_kind is not None

    def test_io_accesses_match(self):
        source = """
        .text
        set     0x80000010, %l0
        mov     0x5A, %o0
        st      %o0, [%l0]
        stb     %o0, [%l0 + 4]
        sth     %o0, [%l0 + 6]
        ld      [%l0], %o1
        ldub    [%l0 + 4], %o2
        std     %o2, [%l0 + 8]
        ldd     [%l0 + 8], %o4
        ta      0
"""
        program = assemble(source, name="io")
        reference, fast = verify_rtl_bit_identity(program, max_instructions=100)
        assert any(t.kind == "io" for t in reference.transactions)

    def test_subword_and_signed_memory_ops_match(self):
        source = """
        .text
        set     buffer, %l0
        mov     0x8F, %o0
        stb     %o0, [%l0 + 1]
        sth     %o0, [%l0 + 2]
        ldsb    [%l0 + 1], %o1
        ldsh    [%l0 + 2], %o2
        ldub    [%l0 + 1], %o3
        lduh    [%l0 + 2], %o4
        st      %o1, [%l0 + 4]
        ta      0
        .data
buffer:
        .space  16
"""
        program = assemble(source, name="subword")
        reference, fast = verify_rtl_bit_identity(program, max_instructions=100)
        assert reference.normal_exit


class TestSpecialisationCache:
    def test_loops_specialise_each_pc_once(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        core = Leon3FastCore()
        core.load_program(program)
        result = core.run(max_instructions=10_000)
        assert result.normal_exit
        assert core.decode_fills < result.instructions
        assert core.decode_fills == len(core._op_cache)

    def test_store_to_code_page_stays_identical(self):
        # The RTL model's icache is not coherent with stores: patching an
        # already-cached instruction leaves the *stale* word executing while
        # the trace decodes the patched memory image.  The fast engine must
        # replicate both halves of that behaviour exactly.
        from repro.isa import encoding
        from repro.isa.encoding import OP_ARITH

        patch_word = encoding.Format3Imm(
            op=OP_ARITH, op3=0x02, rd=8, rs1=0, simm13=7
        ).encode()  # or %g0, 7, %o0
        source = f"""
        .text
        set     patch, %o3
        set     {patch_word:#010x}, %o4
        set     out, %l1
        mov     0, %o5
loop:
patch:
        mov     1, %o0
        st      %o0, [%l1]
        cmp     %o5, 0
        bne     done
        nop
        inc     %o5
        st      %o4, [%o3]
        ba      loop
        nop
done:
        ta      0
        .data
out:
        .space  8
"""
        program = assemble(source, name="selfmod")
        reference, fast = verify_rtl_bit_identity(program)
        out_values = [t.value for t in fast.transactions if t.value in (1, 7)]
        # Both passes execute the stale cached instruction (unlike the ISS,
        # whose store invalidates its decode cache *and* its "icache" is the
        # memory image itself).
        assert out_values == [1, 1]

    def test_reload_restores_patched_memory(self):
        core = Leon3FastCore()
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        core.load_program(program)
        first = core.run(max_instructions=10_000)
        core.reload()
        second = core.run(max_instructions=10_000)
        assert first.transactions == second.transactions
        assert first.cycles == second.cycles


class TestFaultCompilation:
    def test_array_faults_run_on_the_fast_engine(self):
        core = Leon3FastCore()
        core.load_program(build_program("intbench"))
        site = core.netlist.site_for("rf.cells", 5, index=20)
        core.inject([PermanentFault(site=site, model=FaultModel.STUCK_AT_1)])
        assert not core.uses_fallback
        assert core._rf_fault is not None

    def test_net_faults_delegate_to_the_reference(self):
        core = Leon3FastCore()
        program = build_program("intbench")
        core.load_program(program)
        site = core.netlist.site_for("alu.adder.sum", 1)
        fault = PermanentFault(site=site, model=FaultModel.STUCK_AT_1)
        core.inject([fault])
        assert core.uses_fallback
        fast = core.run(max_instructions=8_000)

        reference_core = Leon3Core()
        reference_core.load_program(program)
        reference_core.inject([fault])
        reference = reference_core.run(max_instructions=8_000)
        assert_rtl_results_identical(reference_core, reference, core, fast)

    def test_clear_faults_restores_the_fast_engine(self):
        core = Leon3FastCore()
        core.load_program(build_program("intbench"))
        core.inject([PermanentFault(
            site=core.netlist.site_for("alu.adder.sum", 1),
            model=FaultModel.STUCK_AT_1,
        )])
        assert core.uses_fallback
        core.clear_faults()
        assert not core.uses_fallback
        assert core.netlist.active_faults() == []

    def test_invalid_sites_fail_loud(self):
        from repro.rtl.netlist import NetlistError

        core = Leon3FastCore()
        core.load_program(build_program("intbench"))
        bogus = FaultSite(net="rf.cells", bit=40, unit="iu.regfile", index=3)
        with pytest.raises(NetlistError):
            core.inject([PermanentFault(site=bogus, model=FaultModel.STUCK_AT_1)])


class TestResultTransparency:
    """Open-line outcomes must not depend on what ran before on the backend.

    Regression test for the ``StorageArray._last_read`` reset: the open-line
    model's "previous value" must start from the post-reset state every run,
    so a backend reused across jobs (every scheduler does this) classifies a
    fault exactly like a fresh one.
    """

    def _entry_valid_fault(self, backend, program):
        # The valid cell of the entry point's icache line is the first cell
        # of its array read in every run — the site where leaked last_read
        # state would be observable.
        cache = (
            backend.core.cmem.icache
            if isinstance(backend.core, Leon3Core)
            else backend.core.icache
        )
        index = (program.entry_point >> cache.index_shift) & (cache.lines - 1)
        site = backend.core.netlist.site_for("icache.valid", 0, index=index)
        return PermanentFault(site=site, model=FaultModel.OPEN_LINE)

    @pytest.mark.parametrize("fast", [False, True], ids=["reference", "fast"])
    def test_reused_backend_matches_fresh_backend(self, fast):
        program = build_program("intbench")
        reused = Leon3RtlBackend(fast=fast)
        reused.prepare(program)
        golden = reused.run(max_instructions=400_000)  # pollutes reused state
        fault = self._entry_valid_fault(reused, program)
        budget = watchdog_budget(golden.instructions)
        from_reused = reused.run(max_instructions=budget, faults=[fault])

        fresh = Leon3RtlBackend(fast=fast)
        fresh.prepare(program)
        from_fresh = fresh.run(max_instructions=budget, faults=[fault])
        assert from_reused == from_fresh


class TestSelection:
    def test_rtl_backend_defaults_to_fast(self):
        assert isinstance(Leon3RtlBackend().core, Leon3FastCore)
        assert isinstance(Leon3RtlBackend(fast=False).core, Leon3Core)

    def test_explicit_core_pins_the_backend(self):
        core = Leon3Core()
        backend = Leon3RtlBackend(core=core)
        assert backend.core is core

    def test_backend_runs_identical_under_fault(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        results = {}
        for fast in (True, False):
            backend = Leon3RtlBackend(fast=fast)
            backend.prepare(program)
            site = backend.sites.sample(1, units=["cmem"], seed=3)[0]
            fault = PermanentFault(site=site, model=FaultModel.STUCK_AT_1)
            results[fast] = backend.run(max_instructions=100_000, faults=[fault])
        assert results[True] == results[False]

    def test_campaign_config_selects_cycle_engine(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        config = CampaignConfig(sample_size=2, rtl_fast=False)
        engine = CampaignEngine(program, config, backend_factory=Leon3RtlBackend)
        assert isinstance(engine.backend.core, Leon3Core)
        default_engine = CampaignEngine(program, backend_factory=Leon3RtlBackend)
        assert isinstance(default_engine.backend.core, Leon3FastCore)
        # Both cycle-engine choices share one store identity: the flag is
        # result-transparent and must not fork the campaign cache.
        assert backend_identity("rtl", engine.backend_factory) == backend_identity(
            "rtl", default_engine.backend_factory
        ) == backend_identity("rtl", Leon3RtlBackend)

    def test_campaign_config_honours_partial_rtl_factories(self):
        program = assemble(SMALL_PROGRAM_SOURCE, name="small")
        config = CampaignConfig(sample_size=2, rtl_fast=False)
        # A partial customising an unrelated knob still gets the config's
        # engine choice; an explicit fast= binding wins over the config.
        engine = CampaignEngine(
            program, config,
            backend_factory=functools.partial(Leon3RtlBackend, icache_lines=8),
        )
        assert isinstance(engine.backend.core, Leon3Core)
        assert engine.backend.core.cmem.icache.lines == 8
        pinned = CampaignEngine(
            program, config,
            backend_factory=functools.partial(Leon3RtlBackend, fast=True),
        )
        assert isinstance(pinned.backend.core, Leon3FastCore)

    def test_geometry_partials_keep_their_own_identity(self):
        bare = backend_identity("rtl", Leon3RtlBackend)
        assert backend_identity(
            "rtl", functools.partial(Leon3RtlBackend, fast=False)
        ) == bare
        assert backend_identity(
            "rtl", functools.partial(Leon3RtlBackend, fast=True)
        ) == bare
        tuned = backend_identity(
            "rtl", functools.partial(Leon3RtlBackend, fast=True, icache_lines=8)
        )
        assert tuned != bare
        assert "icache_lines=8" in tuned
        assert "fast" not in tuned

    def test_object_bound_partials_are_refused(self):
        # Mirrors the ISS-side contract: an object's default repr embeds its
        # memory address (the key never matches again), so object-valued
        # bound arguments must fail loud even with the fast flag present.
        with pytest.raises(ValueError, match="named zero-argument factory"):
            backend_identity(
                "rtl",
                functools.partial(Leon3RtlBackend, fast=True, core=Leon3FastCore()),
            )

    def test_run_iu_campaign_fast_matches_reference(self):
        program = build_program("intbench")
        shared = {
            "sample_size": 5, "fault_models": [FaultModel.STUCK_AT_1], "seed": 11,
        }
        fast = run_iu_campaign(program, fast=True, **shared)
        reference = run_iu_campaign(program, fast=False, **shared)
        for model in fast:
            assert fast[model].outcomes == reference[model].outcomes
            assert (
                fast[model].failure_probability
                == reference[model].failure_probability
            )


class TestStoreRoundTrip:
    def test_fast_and_reference_engines_share_one_stored_campaign(self, tmp_path):
        from repro.store import CampaignStore

        program = build_program("intbench")
        store_path = str(tmp_path / "campaigns.db")
        shared = {
            "unit_scope": "cmem", "sample_size": 4,
            "fault_models": [FaultModel.STUCK_AT_1], "seed": 3,
            "store_path": store_path,
        }
        fast_results = CampaignEngine(
            program, CampaignConfig(rtl_fast=True, **shared),
            backend_factory=Leon3RtlBackend,
        ).run()
        with CampaignStore(store_path) as store:
            after_fast = store.counters()
        assert after_fast["jobs_executed"] == 4

        # The reference engine must hit the fast engine's stored campaign:
        # same key, zero new injections, bit-identical outcomes.
        reference_results = CampaignEngine(
            program, CampaignConfig(rtl_fast=False, **shared),
            backend_factory=Leon3RtlBackend,
        ).run()
        with CampaignStore(store_path) as store:
            after_reference = store.counters()
        assert after_reference["jobs_executed"] == after_fast["jobs_executed"]
        assert after_reference["jobs_cached"] == after_fast["jobs_cached"] + 4
        assert after_reference["campaign_hits"] == after_fast["campaign_hits"] + 1
        for model in fast_results:
            assert fast_results[model].outcomes == reference_results[model].outcomes
