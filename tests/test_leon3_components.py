"""Unit tests for the structural Leon3 building blocks (ALU, regfile, PSR, cache, bus)."""

import pytest

from repro.isa.ccodes import ConditionCodes
from repro.isa.registers import RegisterWindowError
from repro.iss.memory import Memory
from repro.leon3.alu import Alu
from repro.leon3.bus import BusMonitor
from repro.leon3.cache import CacheMemory, DirectMappedCache
from repro.leon3.psr import ProcessorState
from repro.leon3.regfile import RegisterFileRtl
from repro.rtl.faults import FaultModel, PermanentFault
from repro.rtl.netlist import Netlist


@pytest.fixture
def netlist():
    return Netlist()


class TestAlu:
    def test_add_and_carry_flag(self, netlist):
        alu = Alu(netlist)
        result, icc = alu.add(0xFFFFFFFF, 1)
        assert result == 0
        assert icc.c == 1 and icc.z == 1

    def test_subtract_borrow(self, netlist):
        alu = Alu(netlist)
        result, icc = alu.subtract(3, 5)
        assert result == 0xFFFFFFFE
        assert icc.c == 1 and icc.n == 1

    def test_logic_operations(self, netlist):
        alu = Alu(netlist)
        assert alu.logic("and", 0xF0, 0x3C)[0] == 0x30
        assert alu.logic("or", 0xF0, 0x0F)[0] == 0xFF
        assert alu.logic("xor", 0xFF, 0x0F)[0] == 0xF0
        assert alu.logic("xnor", 0, 0)[0] == 0xFFFFFFFF
        assert alu.logic("mov", 0, 0x1234)[0] == 0x1234

    def test_shift_operations(self, netlist):
        alu = Alu(netlist)
        assert alu.shift("sll", 1, 4) == 16
        assert alu.shift("srl", 0x80000000, 31) == 1
        assert alu.shift("sra", 0x80000000, 31) == 0xFFFFFFFF

    def test_multiply_unsigned_and_signed(self, netlist):
        alu = Alu(netlist)
        assert alu.multiply(6, 7, signed=False) == (42, 0)
        low, high = alu.multiply(0xFFFFFFFF, 2, signed=True)  # -1 * 2
        assert low == 0xFFFFFFFE and high == 0xFFFFFFFF

    def test_divide(self, netlist):
        alu = Alu(netlist)
        assert alu.divide(0, 42, 6, signed=False) == 7
        assert alu.divide(1, 0, 16, signed=False) == 0x10000000

    def test_divide_by_zero_raises(self, netlist):
        alu = Alu(netlist)
        with pytest.raises(ZeroDivisionError):
            alu.divide(0, 1, 0, signed=False)

    def test_fault_on_adder_output_corrupts_sum(self, netlist):
        alu = Alu(netlist)
        netlist.inject(
            PermanentFault(netlist.site_for("alu.adder.sum", 0), FaultModel.STUCK_AT_1)
        )
        result, _ = alu.add(2, 2)
        assert result == 5

    def test_fault_on_adder_does_not_affect_shifter(self, netlist):
        alu = Alu(netlist)
        netlist.inject(
            PermanentFault(netlist.site_for("alu.adder.sum", 0), FaultModel.STUCK_AT_1)
        )
        assert alu.shift("sll", 2, 1) == 4


class TestRegisterFileRtl:
    def test_write_read_through_ports(self, netlist):
        regfile = RegisterFileRtl(netlist)
        regfile.write(8, 0x1234, cwp=0)
        assert regfile.read_port1(8, cwp=0) == 0x1234
        assert regfile.read_port2(8, cwp=0) == 0x1234

    def test_g0_always_zero(self, netlist):
        regfile = RegisterFileRtl(netlist)
        regfile.write(0, 99, cwp=0)
        assert regfile.read_port1(0, cwp=0) == 0

    def test_window_overlap_matches_sparc_semantics(self, netlist):
        regfile = RegisterFileRtl(netlist)
        regfile.write(8, 55, cwp=0)          # %o0 in window 0
        assert regfile.read_port1(24, cwp=1) == 55  # %i0 in window 1

    def test_save_restore_depth_tracking(self, netlist):
        regfile = RegisterFileRtl(netlist, nwindows=3)
        regfile.save()
        regfile.save()
        with pytest.raises(RegisterWindowError):
            regfile.save()
        regfile.restore()
        regfile.restore()
        with pytest.raises(RegisterWindowError):
            regfile.restore()

    def test_storage_cell_fault_corrupts_only_that_register(self, netlist):
        regfile = RegisterFileRtl(netlist)
        # Physical cell of %g1 is index 1.
        netlist.inject(
            PermanentFault(
                netlist.site_for("rf.cells", 0, index=1), FaultModel.STUCK_AT_1
            )
        )
        regfile.write(1, 0, cwp=0)
        regfile.write(2, 0, cwp=0)
        assert regfile.read_port1(1, cwp=0) == 1
        assert regfile.read_port1(2, cwp=0) == 0

    def test_port_address_fault_redirects_access(self, netlist):
        regfile = RegisterFileRtl(netlist)
        regfile.write(2, 0xAA, cwp=0)
        regfile.write(3, 0xBB, cwp=0)
        # Stick bit 0 of the read port address: reads of %g2 become %g3.
        netlist.inject(
            PermanentFault(netlist.site_for("rf.raddr1", 0), FaultModel.STUCK_AT_1)
        )
        assert regfile.read_port1(2, cwp=0) == 0xBB


class TestProcessorState:
    def test_icc_roundtrip(self, netlist):
        psr = ProcessorState(netlist)
        written = psr.write_icc(ConditionCodes(n=1, z=0, v=0, c=1))
        assert written.n == 1 and written.c == 1
        assert psr.read_icc().as_bits() == written.as_bits()

    def test_cwp_wraps_modulo_windows(self, netlist):
        psr = ProcessorState(netlist, nwindows=4)
        assert psr.write_cwp(5) == 1

    def test_y_register(self, netlist):
        psr = ProcessorState(netlist)
        psr.write_y(0xDEAD)
        assert psr.read_y() == 0xDEAD

    def test_fault_on_icc_bit_changes_observed_flags(self, netlist):
        psr = ProcessorState(netlist)
        netlist.inject(
            PermanentFault(netlist.site_for("psr.icc", 2), FaultModel.STUCK_AT_1)
        )
        observed = psr.write_icc(ConditionCodes())
        assert observed.z == 1


class TestCaches:
    def _make(self, netlist):
        memory = Memory()
        cache = DirectMappedCache(netlist, memory, "dcache", "cmem.dcache", lines=4, words_per_line=2)
        return memory, cache

    def test_first_access_misses_then_hits(self, netlist):
        memory, cache = self._make(netlist)
        memory.write_word(0x100, 0xAABBCCDD)
        assert cache.read_word(0x100) == 0xAABBCCDD
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.read_word(0x100) == 0xAABBCCDD
        assert (cache.hits, cache.misses) == (1, 1)

    def test_line_fill_brings_neighbouring_word(self, netlist):
        memory, cache = self._make(netlist)
        memory.write_word(0x100, 1)
        memory.write_word(0x104, 2)
        cache.read_word(0x100)
        assert cache.read_word(0x104) == 2
        assert cache.misses == 1

    def test_write_through_updates_memory(self, netlist):
        memory, cache = self._make(netlist)
        cache.write_word(0x200, 0x5555)
        assert memory.read_word(0x200) == 0x5555

    def test_conflicting_lines_evict(self, netlist):
        memory, cache = self._make(netlist)
        memory.write_word(0x0, 1)
        memory.write_word(0x20, 2)  # maps to the same index (4 lines * 8 bytes)
        cache.read_word(0x0)
        cache.read_word(0x20)
        cache.read_word(0x0)
        assert cache.misses == 3

    def test_invalidate_clears_contents(self, netlist):
        memory, cache = self._make(netlist)
        memory.write_word(0x300, 7)
        cache.read_word(0x300)
        cache.invalidate()
        assert cache.read_word(0x300) == 7
        assert cache.misses == 1  # counters were reset, this is a fresh miss

    def test_data_array_fault_corrupts_cached_load(self, netlist):
        memory, cache = self._make(netlist)
        memory.write_word(0x100, 0)
        # Fault in the data array cell that will hold address 0x100.
        index = (0x100 // 8) % 4
        cell = index * 2 + 0
        netlist.inject(
            PermanentFault(
                netlist.site_for("dcache.data", 5, index=cell), FaultModel.STUCK_AT_1
            )
        )
        assert cache.read_word(0x100) == 32

    def test_cache_memory_subword_loads(self, netlist):
        memory = Memory()
        cmem = CacheMemory(netlist, memory, icache_lines=4, dcache_lines=4, words_per_line=2)
        memory.write_word(0x100, 0x11223344)
        assert cmem.load(0x100, 4) == 0x11223344
        assert cmem.load(0x100, 1) == 0x11
        assert cmem.load(0x101, 1) == 0x22
        assert cmem.load(0x102, 2) == 0x3344

    def test_cache_memory_subword_store_merges(self, netlist):
        memory = Memory()
        cmem = CacheMemory(netlist, memory, icache_lines=4, dcache_lines=4, words_per_line=2)
        memory.write_word(0x200, 0x11223344)
        cmem.store(0x201, 0xAA, 1)
        assert memory.read_word(0x200) == 0x11AA3344
        cmem.store(0x202, 0xBBCC, 2)
        assert memory.read_word(0x200) == 0x11AABBCC

    def test_instruction_fetch_goes_through_icache(self, netlist):
        memory = Memory()
        cmem = CacheMemory(netlist, memory, icache_lines=4, dcache_lines=4, words_per_line=2)
        memory.write_word(0x40000000, 0x01020304)
        assert cmem.fetch(0x40000000) == 0x01020304
        assert cmem.icache.misses == 1
        cmem.fetch(0x40000000)
        assert cmem.icache.hits == 1


class TestBusMonitor:
    def test_store_recorded_with_values(self, netlist):
        bus = BusMonitor(netlist)
        bus.record_store(0x40020000, 0x1234, 4)
        assert len(bus.transactions) == 1
        transaction = bus.transactions[0]
        assert transaction.kind == "store"
        assert transaction.address == 0x40020000
        assert transaction.value == 0x1234

    def test_io_read_recorded(self, netlist):
        bus = BusMonitor(netlist)
        bus.record_io_read(0x80000000, 4)
        assert bus.transactions[0].kind == "io"

    def test_fault_on_bus_data_corrupts_transaction(self, netlist):
        bus = BusMonitor(netlist)
        netlist.inject(
            PermanentFault(netlist.site_for("bus.wdata", 0), FaultModel.STUCK_AT_1)
        )
        bus.record_store(0x100, 0, 4)
        assert bus.transactions[0].value == 1

    def test_reset_clears_transactions(self, netlist):
        bus = BusMonitor(netlist)
        bus.record_store(0, 0, 4)
        bus.reset()
        assert bus.transactions == []
